// Pooled frame buffers and the zero-copy packet path.
//
// Two properties anchor this file:
//   1. lifecycle — pooled buffers are recycled after the last release,
//      refcounts survive multicast fan-out and copy-on-write splits, and
//      the pool never loses track of a live buffer;
//   2. equivalence — serialize_pooled() (in-place patching with RFC 1624
//      incremental checksums) produces bytes identical to the legacy
//      serialize() oracle across randomized header mutations, clone
//      fan-out, and recirculation chains, including the 0x0000/0xFFFF
//      checksum corner cases.
#include "wire/framebuf.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>

#include "common/rng.hpp"
#include "wire/frame.hpp"

namespace netclone::wire {
namespace {

/// Restores the global fast-path toggle on scope exit.
class FastpathGuard {
 public:
  explicit FastpathGuard(bool enabled) : saved_(packet_fastpath_enabled()) {
    set_packet_fastpath_enabled(enabled);
  }
  ~FastpathGuard() { set_packet_fastpath_enabled(saved_); }

 private:
  bool saved_;
};

Frame bytes_of(std::initializer_list<unsigned> values) {
  Frame out;
  out.reserve(values.size());
  for (const unsigned v : values) {
    out.push_back(static_cast<std::byte>(v));
  }
  return out;
}

Frame random_payload(Rng& rng, std::size_t size) {
  Frame out(size);
  for (auto& b : out) {
    b = static_cast<std::byte>(rng.next_u32() & 0xFF);
  }
  return out;
}

Packet sample_packet(Rng& rng, std::size_t payload_size) {
  NetCloneHeader nc;
  nc.type = MsgType::kRequest;
  nc.grp = static_cast<std::uint16_t>(rng.next_below(1024));
  nc.req_id = rng.next_u32();
  nc.idx = static_cast<std::uint8_t>(rng.next_below(4));
  nc.client_id = static_cast<std::uint16_t>(rng.next_below(64));
  nc.client_seq = rng.next_u32();
  return make_netclone_packet(
      MacAddress::from_node(static_cast<std::uint32_t>(rng.next_below(64))),
      MacAddress::from_node(static_cast<std::uint32_t>(rng.next_below(64))),
      Ipv4Address{rng.next_u32()}, Ipv4Address{rng.next_u32()},
      static_cast<std::uint16_t>(40000 + rng.next_below(100)), nc,
      random_payload(rng, payload_size));
}

/// Applies the kind of header mutations the switch performs: destination
/// rewrite, clone marking, request id / state stamping.
void mutate_like_switch(Packet& pkt, Rng& rng) {
  if (rng.bernoulli(0.8)) {
    pkt.ip.dst = Ipv4Address{rng.next_u32()};
  }
  if (rng.bernoulli(0.5)) {
    pkt.nc().clo = static_cast<CloneStatus>(rng.next_below(3));
  }
  if (rng.bernoulli(0.5)) {
    pkt.nc().req_id = rng.next_u32();
  }
  if (rng.bernoulli(0.3)) {
    pkt.nc().sid = static_cast<std::uint8_t>(rng.next_below(16));
  }
  if (rng.bernoulli(0.3)) {
    pkt.nc().state = static_cast<std::uint16_t>(rng.next_below(256));
  }
  if (rng.bernoulli(0.2)) {
    pkt.nc().switch_id = static_cast<std::uint8_t>(rng.next_below(8));
  }
  if (rng.bernoulli(0.2)) {
    pkt.eth.dst = MacAddress::from_node(
        static_cast<std::uint32_t>(rng.next_below(64)));
  }
}

// -- pool lifecycle ---------------------------------------------------------

TEST(FramePool, AcquireReleaseBalancesLiveCount) {
  FramePool pool;
  FrameBuf* a = pool.acquire(100);
  FrameBuf* b = pool.acquire(1000);
  EXPECT_EQ(pool.stats().live, 2U);
  EXPECT_EQ(pool.stats().slabs_allocated, 2U);
  a->refs = 0;
  pool.release(a);
  b->refs = 0;
  pool.release(b);
  EXPECT_EQ(pool.stats().live, 0U);
  EXPECT_EQ(pool.stats().acquired, 2U);
  EXPECT_EQ(pool.stats().released, 2U);
}

TEST(FramePool, RecyclesFromFreeListAfterLastRelease) {
  FramePool pool;
  FrameBuf* a = pool.acquire(100);  // 128-byte class
  a->refs = 0;
  pool.release(a);
  FrameBuf* b = pool.acquire(90);  // same class: must hit the free list
  if (FramePool::kRecyclingEnabled) {
    EXPECT_EQ(pool.stats().recycled, 1U);
    EXPECT_EQ(pool.stats().slabs_allocated, 1U);
    EXPECT_EQ(b, a);  // the very same slab came back
  } else {
    // Under ASan recycling is off so use-after-release is a visible
    // heap-use-after-free; every acquire is a fresh allocation.
    EXPECT_EQ(pool.stats().recycled, 0U);
    EXPECT_EQ(pool.stats().slabs_allocated, 2U);
  }
  b->refs = 0;
  pool.release(b);
}

TEST(FramePool, OversizedRequestsAreUnpooled) {
  FramePool pool;
  FrameBuf* big = pool.acquire(1 << 16);
  EXPECT_EQ(big->capacity, 1U << 16);
  big->refs = 0;
  pool.release(big);
  FrameBuf* again = pool.acquire(1 << 16);
  EXPECT_EQ(pool.stats().recycled, 0U);  // oversized never hits a free list
  again->refs = 0;
  pool.release(again);
  EXPECT_EQ(pool.stats().live, 0U);
}

TEST(FrameHandle, CopiesShareBytesAndDropToZeroTogether) {
  FramePool pool;
  const Frame data = bytes_of({1, 2, 3, 4, 5});
  {
    FrameHandle h = FrameHandle::allocate(pool, data.size());
    std::memcpy(h.writable_all(), data.data(), data.size());
    EXPECT_EQ(h.use_count(), 1U);
    FrameHandle copy = h;
    EXPECT_EQ(h.use_count(), 2U);
    EXPECT_TRUE(copy.shares_body_with(h));
    EXPECT_EQ(copy.to_frame(), data);
    FrameHandle moved = std::move(copy);
    EXPECT_EQ(h.use_count(), 2U);  // move transfers, never bumps
    EXPECT_EQ(moved.to_frame(), data);
    EXPECT_EQ(pool.stats().live, 1U);
  }
  EXPECT_EQ(pool.stats().live, 0U);  // last handle out released the slab
}

TEST(FrameHandle, MulticastStyleFanOutKeepsBufferAliveUntilLastCopy) {
  FramePool pool;
  std::vector<FrameHandle> ports;
  {
    FrameHandle frame = FrameHandle::allocate(pool, 64);
    std::memset(frame.writable_all(), 0xAB, 64);
    for (int i = 0; i < 8; ++i) {
      ports.push_back(frame);  // the PRE: one refcount bump per port
    }
    EXPECT_EQ(frame.use_count(), 9U);
    EXPECT_EQ(pool.stats().live, 1U);  // 9 handles, ONE buffer
  }
  EXPECT_EQ(pool.stats().live, 1U);
  for (auto& p : ports) {
    EXPECT_EQ(p.bytes()[0], std::byte{0xAB});
  }
  ports.clear();
  EXPECT_EQ(pool.stats().live, 0U);
}

// -- copy-on-write splits ---------------------------------------------------

TEST(FrameHandle, WritableHeadPatchesInPlaceWhenUnique) {
  FramePool pool;
  FrameHandle h = FrameHandle::allocate(pool, 32);
  std::memset(h.writable_all(), 0, 32);
  std::byte* head = h.writable_head(8);
  head[0] = std::byte{0xFF};
  EXPECT_FALSE(h.split());  // unique owner: no split happened
  EXPECT_EQ(h.bytes()[0], std::byte{0xFF});
  EXPECT_EQ(pool.stats().live, 1U);
}

TEST(FrameHandle, WritableHeadSplitsWhenSharedAndLeavesOtherCopyIntact) {
  FramePool pool;
  FrameHandle original = FrameHandle::allocate(pool, 32);
  std::memset(original.writable_all(), 0x11, 32);
  FrameHandle clone = original;

  std::byte* head = clone.writable_head(8);
  head[0] = std::byte{0x99};

  EXPECT_TRUE(clone.split());
  EXPECT_FALSE(original.split());
  // The original still reads the untouched bytes...
  EXPECT_EQ(original.bytes()[0], std::byte{0x11});
  // ...while the clone sees its private head and the shared tail.
  const Frame patched = clone.to_frame();
  EXPECT_EQ(patched[0], std::byte{0x99});
  EXPECT_EQ(patched[1], std::byte{0x11});
  EXPECT_EQ(patched[8], std::byte{0x11});
  EXPECT_EQ(patched.size(), 32U);
  // Exactly one extra (head) buffer was allocated; the tail is shared.
  EXPECT_EQ(pool.stats().live, 2U);
}

TEST(FrameHandle, ToleratedBodyRefsAllowsInPlacePatching) {
  FramePool pool;
  FrameHandle a = FrameHandle::allocate(pool, 32);
  std::memset(a.writable_all(), 0, 32);
  FrameHandle b = a;  // e.g. a backed Packet's payload view
  std::byte* head = a.writable_head(8, /*tolerated_body_refs=*/2);
  head[0] = std::byte{0x42};
  EXPECT_FALSE(a.split());  // two refs tolerated: patched in place
  EXPECT_EQ(b.bytes()[0], std::byte{0x42});
}

TEST(FrameHandle, SplitHandleCopyDuplicatesOnlyTheHeadOnNextWrite) {
  FramePool pool;
  FrameHandle original = FrameHandle::allocate(pool, 32);
  std::memset(original.writable_all(), 0x11, 32);
  FrameHandle clone = original;
  (void)clone.writable_head(8);  // forces the split
  FrameHandle clone2 = clone;    // shares the split head AND the tail

  std::byte* head = clone2.writable_head(8);
  head[1] = std::byte{0x77};

  const Frame a = clone.to_frame();
  const Frame b = clone2.to_frame();
  EXPECT_EQ(a[1], std::byte{0x11});
  EXPECT_EQ(b[1], std::byte{0x77});
  EXPECT_EQ(a[9], b[9]);  // tail still shared and equal
}

TEST(PayloadRef, ViewPinsBackingAndComparesLikeOwnedBytes) {
  FramePool pool;
  const Frame data = bytes_of({10, 20, 30, 40});
  PayloadRef view;
  {
    FrameHandle h = FrameHandle::allocate(pool, data.size());
    std::memcpy(h.writable_all(), data.data(), data.size());
    view = PayloadRef{h, h.bytes()};
  }
  // The handle went out of scope but the view keeps the buffer alive.
  EXPECT_EQ(pool.stats().live, 1U);
  EXPECT_TRUE(view.is_view());
  EXPECT_EQ(view, data);
  EXPECT_EQ(view.to_frame(), data);
  view.clear();
  EXPECT_EQ(pool.stats().live, 0U);
}

// -- fast path vs legacy oracle --------------------------------------------

TEST(PacketFastpath, BackedParseMatchesLegacyParse) {
  Rng rng{0xBEEF};
  for (int round = 0; round < 200; ++round) {
    Packet built = sample_packet(rng, rng.next_below(200));
    const Frame wire = built.serialize();

    const Packet legacy = Packet::parse(wire);
    const Packet backed = Packet::parse_backed(FrameHandle::copy_of(wire));

    EXPECT_TRUE(backed.backed());
    EXPECT_FALSE(legacy.backed());
    EXPECT_EQ(backed.eth.src, legacy.eth.src);
    EXPECT_EQ(backed.ip.src, legacy.ip.src);
    EXPECT_EQ(backed.ip.dst, legacy.ip.dst);
    EXPECT_EQ(backed.ip.header_checksum, legacy.ip.header_checksum);
    EXPECT_EQ(backed.udp.checksum, legacy.udp.checksum);
    ASSERT_EQ(backed.has_netclone(), legacy.has_netclone());
    EXPECT_EQ(backed.nc().req_id, legacy.nc().req_id);
    EXPECT_TRUE(backed.payload.is_view());
    EXPECT_EQ(backed.payload, legacy.payload.to_frame());
  }
}

TEST(PacketFastpath, PatchedSerializeIsByteIdenticalToOracle) {
  Rng rng{0xC10E};
  for (int round = 0; round < 500; ++round) {
    Packet built = sample_packet(rng, rng.next_below(300));
    const Frame wire = built.serialize();

    Packet pkt = Packet::parse_backed(FrameHandle::copy_of(wire));
    mutate_like_switch(pkt, rng);

    // Oracle: full rebuild from the mutated struct fields.
    const Frame expected = pkt.serialize();
    // Fast path: in-place patch with incremental checksums.
    const FrameHandle fast = pkt.serialize_pooled();

    ASSERT_EQ(fast.to_frame(), expected) << "round " << round;
    // The struct's checksum fields were updated to the patched values.
    EXPECT_EQ(pkt.ip.header_checksum,
              peek_u16(expected, EthernetHeader::kSize + 10));
    EXPECT_TRUE(Packet::parse(expected).ip.checksum_valid());
  }
}

TEST(PacketFastpath, CloneFanOutSharesPayloadAndStaysByteExact) {
  Rng rng{0xFA40};
  for (int round = 0; round < 100; ++round) {
    Packet built = sample_packet(rng, 64 + rng.next_below(128));
    const Frame wire = built.serialize();
    const FrameHandle incoming = FrameHandle::copy_of(wire);

    // Two clone copies parsed from the same frame, mutated differently —
    // the LÆDGE/clone pattern. Both must match their own oracle, and both
    // must share the incoming frame's payload bytes.
    Packet a = Packet::parse_backed(incoming);
    Packet b = Packet::parse_backed(incoming);
    a.nc().clo = CloneStatus::kClonedOriginal;
    a.ip.dst = Ipv4Address{rng.next_u32()};
    b.nc().clo = CloneStatus::kClonedCopy;
    b.ip.dst = Ipv4Address{rng.next_u32()};
    b.nc().sid = 7;

    const Frame expect_a = a.serialize();
    const Frame expect_b = b.serialize();
    const FrameHandle fast_a = a.serialize_pooled();
    const FrameHandle fast_b = b.serialize_pooled();

    ASSERT_EQ(fast_a.to_frame(), expect_a);
    ASSERT_EQ(fast_b.to_frame(), expect_b);
    // The shared incoming frame must not have been scribbled on.
    ASSERT_EQ(incoming.to_frame(), wire);
    // Copy-on-write: each clone carries a private head, shared tail.
    EXPECT_TRUE(fast_a.split());
    EXPECT_TRUE(fast_b.split());
    EXPECT_TRUE(fast_a.shares_body_with(incoming));
    EXPECT_TRUE(fast_b.shares_body_with(incoming));
  }
}

TEST(PacketFastpath, RecirculationChainStaysByteExact) {
  Rng rng{0x5EC1};
  for (int round = 0; round < 50; ++round) {
    Packet built = sample_packet(rng, rng.next_below(100));
    FrameHandle frame = FrameHandle::copy_of(built.serialize());
    Frame oracle = frame.to_frame();

    // A recirculation loop: parse, mutate, re-serialize, feed the result
    // back in — several times, as the switch loopback port does.
    for (int hop = 0; hop < 4; ++hop) {
      Packet pkt = Packet::parse_backed(frame);
      Packet check = Packet::parse(oracle);
      mutate_like_switch(pkt, rng);
      // Apply identical mutations to the oracle packet by copying fields.
      check.eth = pkt.eth;
      check.ip = pkt.ip;
      check.udp = pkt.udp;
      check.netclone = pkt.netclone;
      frame = pkt.serialize_pooled();
      oracle = check.serialize();
      ASSERT_EQ(frame.to_frame(), oracle)
          << "round " << round << " hop " << hop;
    }
  }
}

TEST(PacketFastpath, UnchangedPacketForwardsTheExactSameBuffer) {
  Rng rng{0x1D1E};
  Packet built = sample_packet(rng, 32);
  const FrameHandle incoming = FrameHandle::copy_of(built.serialize());
  Packet pkt = Packet::parse_backed(incoming);
  const FrameHandle out = pkt.serialize_pooled();
  // No mutation: the very same buffer flows through, no copy at all.
  EXPECT_TRUE(out.shares_body_with(incoming));
  EXPECT_FALSE(out.split());
  EXPECT_EQ(out.to_frame(), incoming.to_frame());
}

TEST(PacketFastpath, PayloadGrowthFallsBackToFullRebuild) {
  Rng rng{0x90FF};
  Packet built = sample_packet(rng, 16);
  const FrameHandle incoming = FrameHandle::copy_of(built.serialize());
  Packet pkt = Packet::parse_backed(incoming);
  pkt.payload = random_payload(rng, 64);  // size change: patching illegal
  const Frame expected = pkt.serialize();
  EXPECT_EQ(pkt.serialize_pooled().to_frame(), expected);
}

TEST(PacketFastpath, DisabledToggleReproducesLegacyBehavior) {
  FastpathGuard guard{false};
  Rng rng{0x0FF0};
  Packet built = sample_packet(rng, 40);
  const FrameHandle incoming = FrameHandle::copy_of(built.serialize());
  Packet pkt = Packet::parse_backed(incoming);
  EXPECT_FALSE(pkt.backed());          // legacy parse: no backing retained
  EXPECT_FALSE(pkt.payload.is_view());  // payload copied, not viewed
  pkt.ip.dst = Ipv4Address{rng.next_u32()};
  EXPECT_EQ(pkt.serialize_pooled().to_frame(), pkt.serialize());
}

// -- RFC 1624 corner cases --------------------------------------------------

// Searches mutations that drive the patched IPv4 checksum through the
// 0x0000/0xFFFF boundary region, where naive incremental updates (RFC 1141)
// diverge from a full recompute. Equation 3 of RFC 1624 must agree with the
// oracle everywhere.
TEST(PacketFastpath, ChecksumBoundaryValuesMatchOracle) {
  Rng rng{0xCAFE};
  int boundary_hits = 0;
  for (int round = 0; round < 8000 && boundary_hits < 6; ++round) {
    Packet built = sample_packet(rng, 8);
    built.ip.identification = static_cast<std::uint16_t>(rng.next_below(3));
    const Frame wire = built.serialize();

    Packet pkt = Packet::parse_backed(FrameHandle::copy_of(wire));
    // Nudge identification so the new checksum lands near the boundary.
    const std::uint16_t old_csum = pkt.ip.header_checksum;
    pkt.ip.identification = static_cast<std::uint16_t>(
        pkt.ip.identification + old_csum);  // pushes the sum toward ~0

    const Frame expected = pkt.serialize();
    const std::uint16_t expect_csum =
        peek_u16(expected, EthernetHeader::kSize + 10);
    if (expect_csum == 0x0000 || expect_csum == 0xFFFF ||
        expect_csum <= 2 || expect_csum >= 0xFFFD) {
      ++boundary_hits;
    }
    ASSERT_EQ(pkt.serialize_pooled().to_frame(), expected)
        << "round " << round << " csum " << expect_csum;
  }
  EXPECT_GT(boundary_hits, 0) << "search never reached the boundary region";
}

// The UDP checksum has its own corner: a computed 0 must be transmitted as
// 0xFFFF (RFC 768). Construct the wrap exactly: shifting the dst low word
// by the old transmitted checksum (mod 0xFFFF) drives the new one's
// complement sum to ≡ 0, so the recompute passes through the 0 -> 0xFFFF
// rule — and the incremental patch must land on the same 0xFFFF.
TEST(PacketFastpath, UdpChecksumZeroWrapMatchesOracle) {
  Rng rng{0xD00D};
  int wraps = 0;
  for (int round = 0; round < 200; ++round) {
    Packet built = sample_packet(rng, 4);
    const Frame wire = built.serialize();
    Packet pkt = Packet::parse_backed(FrameHandle::copy_of(wire));

    const std::uint32_t m = pkt.ip.dst.value & 0xFFFFU;
    const std::uint32_t s = pkt.udp.checksum;  // old transmitted value
    const std::uint32_t mp = (m + s) % 0xFFFFU;
    pkt.ip.dst = Ipv4Address{(pkt.ip.dst.value & 0xFFFF0000U) | mp};

    const Frame expected = pkt.serialize();
    const std::uint16_t expect_csum =
        peek_u16(expected, EthernetHeader::kSize + Ipv4Header::kSize + 6);
    if (expect_csum == 0xFFFF) {
      ++wraps;
    }
    ASSERT_EQ(pkt.serialize_pooled().to_frame(), expected)
        << "round " << round << " udp csum " << expect_csum;
  }
  EXPECT_GT(wraps, 100) << "construction should hit the wrap most rounds";
}

// -- scatter-gather composition ---------------------------------------------

TEST(FrameHandleCompose, JoinsHeadWithRefcountSharedTail) {
  FramePool pool;
  const Frame head_bytes = bytes_of({1, 2, 3, 4});
  const Frame tail_bytes_v = bytes_of({9, 8, 7, 6, 5});
  FrameHandle head = FrameHandle::allocate(pool, head_bytes.size());
  std::copy(head_bytes.begin(), head_bytes.end(), head.writable_all());
  FrameHandle tail = FrameHandle::allocate(pool, tail_bytes_v.size());
  std::copy(tail_bytes_v.begin(), tail_bytes_v.end(), tail.writable_all());
  const std::byte* tail_data = tail.bytes().data();

  FrameHandle joined = FrameHandle::compose(std::move(head), tail);
  EXPECT_TRUE(joined.split());
  // The tail bytes are shared, not copied.
  EXPECT_EQ(joined.tail_bytes().data(), tail_data);
  Frame expected = head_bytes;
  expected.insert(expected.end(), tail_bytes_v.begin(), tail_bytes_v.end());
  EXPECT_EQ(joined.to_frame(), expected);

  // Both buffers stay live until every reference drops.
  EXPECT_EQ(pool.stats().live, 2U);
  tail.reset();
  EXPECT_EQ(pool.stats().live, 2U);  // joined still pins the tail
  joined.reset();
  EXPECT_EQ(pool.stats().live, 0U);
}

TEST(FrameHandleCompose, EmptyTailStaysContiguous) {
  FramePool pool;
  FrameHandle head = FrameHandle::allocate(pool, 3);
  std::memset(head.writable_all(), 0x5A, 3);
  const FrameHandle joined = FrameHandle::compose(std::move(head),
                                                  FrameHandle{});
  EXPECT_FALSE(joined.split());
  EXPECT_EQ(joined.size(), 3U);
}

TEST(FrameHandleCompose, RejectsSharedOrSplitHead) {
  FramePool pool;
  FrameHandle tail = FrameHandle::allocate(pool, 4);
  std::memset(tail.writable_all(), 1, 4);
  FrameHandle head = FrameHandle::allocate(pool, 4);
  std::memset(head.writable_all(), 2, 4);
  const FrameHandle alias = head;  // head no longer unique
  EXPECT_THROW((void)FrameHandle::compose(std::move(head), tail),
               CheckFailure);
  (void)alias;
}

Packet sg_packet(Rng& rng, const SharedPayload& tail) {
  Packet pkt = sample_packet(rng, 0);
  pkt.payload = tail.ref();
  return pkt;
}

TEST(PacketScatterGather, ComposedSerializeMatchesOracle) {
  Rng rng{0x56A7};
  // Sizes straddle the odd payload offset inside the UDP segment (the
  // NetClone header region is 63 bytes, so the tail sum is byte-swapped)
  // and the empty-tail degenerate case.
  for (const std::size_t size : {0U, 1U, 2U, 7U, 64U, 333U}) {
    for (int round = 0; round < 50; ++round) {
      const Frame payload = random_payload(rng, size);
      const SharedPayload tail = SharedPayload::of(payload);
      Packet pkt = sg_packet(rng, tail);
      mutate_like_switch(pkt, rng);

      const Frame expected = pkt.serialize();  // legacy byte oracle
      const FrameHandle fast = pkt.serialize_sg(tail);
      ASSERT_EQ(fast.to_frame(), expected)
          << "size " << size << " round " << round;
      EXPECT_TRUE(Packet::parse(expected).ip.checksum_valid());
    }
  }
}

TEST(PacketScatterGather, EvenPayloadOffsetMatchesOracle) {
  // Without a NetClone header the payload starts 8 bytes into the UDP
  // segment — the no-byte-swap branch of the tail checksum fold.
  Rng rng{0x0FF5};
  for (int round = 0; round < 100; ++round) {
    Packet pkt = sample_packet(rng, 0);
    pkt.netclone.reset();
    pkt.udp.src_port = 40001;  // keep both ports off kNetClonePort
    pkt.udp.dst_port = 40002;
    const Frame payload = random_payload(rng, 1 + rng.next_below(128));
    const SharedPayload tail = SharedPayload::of(payload);
    pkt.payload = tail.ref();

    const Frame expected = pkt.serialize();
    ASSERT_EQ(pkt.serialize_sg(tail).to_frame(), expected)
        << "round " << round;
  }
}

TEST(PacketScatterGather, FragmentFanOutSharesOneTailBuffer) {
  Rng rng{0x5639};
  const Frame payload = random_payload(rng, 96);
  const SharedPayload tail = SharedPayload::of(payload);
  Packet pkt = sg_packet(rng, tail);
  pkt.nc().frag_count = 3;

  pkt.nc().frag_idx = 0;
  const FrameHandle f0 = pkt.serialize_sg(tail);
  pkt.nc().frag_idx = 1;
  const FrameHandle f1 = pkt.serialize_sg(tail);
  // Every fragment's tail aliases the one shared body buffer.
  EXPECT_EQ(f0.tail_bytes().data(), tail.frame.bytes().data());
  EXPECT_EQ(f1.tail_bytes().data(), tail.frame.bytes().data());
  // And each still matches its own oracle despite the shared tail.
  pkt.nc().frag_idx = 0;
  EXPECT_EQ(f0.to_frame(), pkt.serialize());
  pkt.nc().frag_idx = 1;
  EXPECT_EQ(f1.to_frame(), pkt.serialize());
}

TEST(PacketScatterGather, DisabledToggleFallsBackToLegacy) {
  FastpathGuard guard{false};
  Rng rng{0x70FF};
  const Frame payload = random_payload(rng, 40);
  const SharedPayload tail = SharedPayload::of(payload);
  Packet pkt = sg_packet(rng, tail);
  const FrameHandle out = pkt.serialize_sg(tail);
  EXPECT_FALSE(out.split());  // full rebuild, nothing shared
  EXPECT_EQ(out.to_frame(), pkt.serialize());
}

TEST(PacketScatterGather, MismatchedTailSizeThrows) {
  Rng rng{0xBAD5};
  const Frame payload = random_payload(rng, 16);
  const SharedPayload tail = SharedPayload::of(payload);
  Packet pkt = sg_packet(rng, tail);
  pkt.payload = PayloadRef{};  // payload no longer matches the tail
  EXPECT_THROW((void)pkt.serialize_sg(tail), CheckFailure);
}

}  // namespace
}  // namespace netclone::wire
