#include "kv/zipf.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/check.hpp"

namespace netclone::kv {
namespace {

TEST(Zipf, SamplesStayInRange) {
  ZipfGenerator zipf{1000, 0.99};
  Rng rng{1};
  for (int i = 0; i < 100000; ++i) {
    EXPECT_LT(zipf.sample(rng), 1000U);
  }
}

TEST(Zipf, DeterministicForSeed) {
  ZipfGenerator zipf{1000, 0.99};
  Rng a{5};
  Rng b{5};
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(zipf.sample(a), zipf.sample(b));
  }
}

TEST(Zipf, HeadIsHotAtPaperSkew) {
  ZipfGenerator zipf{1000000, 0.99};
  Rng rng{2};
  constexpr int kN = 200000;
  int head = 0;
  int top100 = 0;
  for (int i = 0; i < kN; ++i) {
    const std::uint64_t k = zipf.sample(rng);
    head += k == 0 ? 1 : 0;
    top100 += k < 100 ? 1 : 0;
  }
  // At theta=0.99 over 1M items, item 0 draws several percent of accesses
  // and the top-100 a large fraction — the skew the paper exploits.
  EXPECT_GT(static_cast<double>(head) / kN, 0.02);
  EXPECT_GT(static_cast<double>(top100) / kN, 0.2);
}

TEST(Zipf, ZeroThetaIsUniform) {
  ZipfGenerator zipf{10, 0.0};
  Rng rng{3};
  std::array<int, 10> counts{};
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    ++counts[zipf.sample(rng)];
  }
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), kN / 10.0, kN * 0.015);
  }
}

TEST(Zipf, RankFrequenciesDecrease) {
  ZipfGenerator zipf{100, 0.9};
  Rng rng{4};
  std::array<int, 100> counts{};
  for (int i = 0; i < 300000; ++i) {
    ++counts[zipf.sample(rng)];
  }
  // Monotone on a coarse grid (individual adjacent ranks are noisy).
  EXPECT_GT(counts[0], counts[9]);
  EXPECT_GT(counts[9], counts[49]);
  EXPECT_GT(counts[49], counts[99]);
}

TEST(Zipf, SingleItemAlwaysZero) {
  ZipfGenerator zipf{1, 0.5};
  Rng rng{5};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(zipf.sample(rng), 0U);
  }
}

TEST(Zipf, RejectsBadParameters) {
  EXPECT_THROW((void)ZipfGenerator(0, 0.5), CheckFailure);
  EXPECT_THROW((void)ZipfGenerator(10, 1.0), CheckFailure);
  EXPECT_THROW((void)ZipfGenerator(10, -0.1), CheckFailure);
}

// Skew sweep: frequency of the hottest item grows with theta.
class ZipfSkewSweep : public ::testing::TestWithParam<double> {};

TEST_P(ZipfSkewSweep, HotterThetaMeansHotterHead) {
  ZipfGenerator zipf{10000, GetParam()};
  Rng rng{6};
  int head = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    head += zipf.sample(rng) == 0 ? 1 : 0;
  }
  const double f = static_cast<double>(head) / kN;
  if (GetParam() < 0.1) {
    EXPECT_LT(f, 0.001);
  } else if (GetParam() > 0.9) {
    EXPECT_GT(f, 0.02);
  }
}

INSTANTIATE_TEST_SUITE_P(Thetas, ZipfSkewSweep,
                         ::testing::Values(0.0, 0.5, 0.9, 0.99));

}  // namespace
}  // namespace netclone::kv
