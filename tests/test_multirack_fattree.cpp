// Determinism and correctness of the fat-tree harness: for both
// aggregation modes, every shard count (legacy engine, 1, 2, and
// one-shard-per-rack) must reproduce the same run bit for bit; in
// replicated mode a clone must actually cross racks through the
// NetClone-aware aggregation tier and every chain replica must converge
// to the identical soft-state image (the auditor's replica-convergence
// invariant). The flash-crowd scenario below is the CI multirack lane's
// end-to-end case.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "harness/invariants.hpp"
#include "harness/multirack.hpp"
#include "harness/scenario.hpp"
#include "host/service.hpp"
#include "host/workload.hpp"

namespace netclone::harness {
namespace {

// Legacy engine, sharded machinery on one queue, a split, and one shard
// per rack (client rack + 2 server racks).
constexpr std::size_t kShardCounts[] = {0, 1, 2, 3};

MultiRackConfig fattree_config(AggMode mode) {
  MultiRackConfig cfg;
  cfg.server_racks = 2;
  cfg.servers_per_rack = 2;
  cfg.num_aggs = 2;
  cfg.agg_mode = mode;
  cfg.workers = 4;
  cfg.num_clients = 2;
  cfg.factory = std::make_shared<host::ExponentialWorkload>(25.0);
  cfg.service =
      std::make_shared<host::SyntheticService>(host::JitterModel{0.01, 15});
  cfg.warmup = SimTime::milliseconds(1);
  cfg.measure = SimTime::milliseconds(5);
  cfg.drain = SimTime::milliseconds(4);
  cfg.seed = 11;
  cfg.offered_rps =
      0.5 * cluster_capacity_rps({4, 4, 4, 4}, 25.0 * 1.14);
  return cfg;
}

struct RunOutcome {
  std::uint64_t digest = 0;
  std::uint64_t executed = 0;
  std::uint64_t completed = 0;
  std::int64_t p99_ns = 0;
};

RunOutcome run_with_shards(MultiRackConfig cfg, std::size_t shards) {
  cfg.num_shards = shards;
  MultiRackExperiment exp{cfg};
  const ExperimentResult result = exp.run();

  const InvariantReport report = audit_invariants(exp);
  EXPECT_TRUE(report.ok()) << "shards=" << shards << ":\n"
                           << report.to_string();
  for (const wire::FramePool::Stats& pool : exp.frame_pool_stats()) {
    EXPECT_LE(pool.released, pool.acquired) << "shards=" << shards;
    EXPECT_EQ(pool.live, pool.acquired - pool.released)
        << "shards=" << shards;
  }

  RunOutcome out;
  out.digest = chaos_digest(exp);
  out.executed = exp.executed_events();
  out.completed = result.completed;
  out.p99_ns = result.p99.ns();
  return out;
}

void expect_identical_across_shards(const MultiRackConfig& cfg,
                                    const char* what) {
  const RunOutcome reference = run_with_shards(cfg, kShardCounts[0]);
  EXPECT_GT(reference.completed, 0u) << what << ": nothing completed";
  for (std::size_t i = 1; i < std::size(kShardCounts); ++i) {
    const std::size_t shards = kShardCounts[i];
    const RunOutcome outcome = run_with_shards(cfg, shards);
    EXPECT_EQ(outcome.digest, reference.digest)
        << what << ": digest diverged at " << shards << " shards";
    EXPECT_EQ(outcome.executed, reference.executed)
        << what << ": executed_events diverged at " << shards << " shards";
    EXPECT_EQ(outcome.completed, reference.completed)
        << what << ": completions diverged at " << shards << " shards";
    EXPECT_EQ(outcome.p99_ns, reference.p99_ns)
        << what << ": p99 diverged at " << shards << " shards";
  }
}

TEST(FatTree, ObliviousDigestsMatchAcrossShardCounts) {
  expect_identical_across_shards(fattree_config(AggMode::kOblivious),
                                 "oblivious");
}

TEST(FatTree, ReplicatedDigestsMatchAcrossShardCounts) {
  expect_identical_across_shards(fattree_config(AggMode::kReplicated),
                                 "replicated");
}

TEST(FatTree, ExplicitRackShardsMatchDefaultAssignment) {
  MultiRackConfig cfg = fattree_config(AggMode::kReplicated);
  const RunOutcome reference = run_with_shards(cfg, 2);
  // Pile both server racks onto shard 1, clients onto 0 — the placement
  // must be invisible in the digest.
  cfg.rack_shards = {0, 1, 1};
  const RunOutcome outcome = run_with_shards(cfg, 2);
  EXPECT_EQ(outcome.digest, reference.digest);
  EXPECT_EQ(outcome.executed, reference.executed);
}

TEST(FatTree, ReplicatedTierClonesAcrossRacks) {
  // Low load: nearly every request is cloned at the aggregation tier.
  // Candidate pairs span racks (sids 0-1 rack 0, 2-3 rack 1), so every
  // server must see executed work and the replicas must report clones.
  MultiRackConfig cfg = fattree_config(AggMode::kReplicated);
  cfg.offered_rps = 30000.0;
  // Enough distinct client IPs that the source-hashed ECMP spray covers
  // both replicas.
  cfg.num_clients = 4;
  MultiRackExperiment exp{cfg};
  const ExperimentResult result = exp.run();
  EXPECT_GT(result.completed, 0u);

  std::uint64_t cloned = 0;
  for (std::size_t a = 0; a < exp.num_aggs(); ++a) {
    const auto& stats = exp.agg_netclone_program(a).stats();
    cloned += stats.cloned_requests;
    EXPECT_GT(stats.requests, 0u) << "replica " << a << " saw no requests";
  }
  EXPECT_GT(cloned, 0u);
  for (const host::Server* server : exp.servers()) {
    EXPECT_GT(server->stats().completed, 0u) << value_of(server->sid());
  }
  // Cloning happens only in the aggregation tier: rack ToRs forward.
  for (std::size_t rack = 0; rack < cfg.server_racks; ++rack) {
    EXPECT_EQ(exp.server_tor_program(rack).stats().cloned_requests, 0u);
  }
  // Exactly-once at the clients even with cross-rack duplicates in
  // flight: the chain tail filtered every duplicate.
  EXPECT_EQ(result.redundant_responses, 0u);
  const InvariantReport report = audit_invariants(exp);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(FatTree, ChainReplicasConverge) {
  MultiRackConfig cfg = fattree_config(AggMode::kReplicated);
  MultiRackExperiment exp{cfg};
  (void)exp.run();
  const auto& head = exp.agg_netclone_program(0);
  EXPECT_GT(head.stats().responses, 0u);
  for (std::size_t a = 1; a < exp.num_aggs(); ++a) {
    const auto& replica = exp.agg_netclone_program(a);
    EXPECT_EQ(replica.stats().responses, head.stats().responses)
        << "replica " << a << " applied a different response stream";
    EXPECT_EQ(replica.soft_state_digest(), head.soft_state_digest())
        << "replica " << a << " diverged from the head";
    // Everything the head forwarded down the chain reached this replica.
    EXPECT_GT(replica.stats().chain_forwards +
                  exp.agg_netclone_program(a - 1).stats().chain_forwards,
              0u);
  }
}

TEST(FatTree, FlashCrowdScenarioUnderAuditor) {
  // The CI multirack lane's end-to-end case: a skewed flash crowd on the
  // replicated tier, built through the scenario generator.
  const Scenario s = parse_scenario(R"(
    scheme = netclone
    racks = 2
    servers_per_rack = 2
    aggs = 2
    agg_mode = replicated
    workers = 4
    clients = 2
    loads = 0.4
    measure_ms = 5
    warmup_ms = 1
    shape = flash
    flash_at_ms = 2
    flash_len_ms = 2
    flash_x = 3
    skew = 0.8
  )");
  MultiRackConfig cfg = s.build_multirack_config();
  cfg.offered_rps = 0.4 * s.capacity_rps();
  MultiRackExperiment exp{cfg};
  const ExperimentResult result = exp.run();
  EXPECT_GT(result.completed, 0u);
  EXPECT_EQ(result.redundant_responses, 0u);
  const InvariantReport report = audit_invariants(exp);
  EXPECT_TRUE(report.ok()) << report.to_string();

  // The crowd is visible: the same scenario without the flash sends
  // measurably fewer requests at the same base rate and seed.
  Scenario steady = s;
  steady.shape = "steady";
  MultiRackConfig steady_cfg = steady.build_multirack_config();
  steady_cfg.offered_rps = cfg.offered_rps;
  MultiRackExperiment steady_exp{steady_cfg};
  const ExperimentResult steady_result = steady_exp.run();
  EXPECT_GT(result.requests_sent, steady_result.requests_sent);
}

TEST(FatTree, ScenarioSweepRunsOnFatTree) {
  Scenario s = parse_scenario(R"(
    scheme = netclone
    racks = 2
    servers_per_rack = 2
    workers = 4
    clients = 1
    loads = 0.3
    measure_ms = 4
    warmup_ms = 1
    title = fat-tree tiny
  )");
  const auto points = s.run();
  ASSERT_EQ(points.size(), 1u);
  EXPECT_GT(points[0].result.completed, 0u);
  EXPECT_GT(points[0].result.cloned_requests, 0u);
}

}  // namespace
}  // namespace netclone::harness
