// The kitchen sink: every optional feature enabled at once, plus a switch
// flap in the middle. This is an interaction test — each feature passes
// its own suite; here we check they compose:
//   * KV workload with GETs, SCANs, and WRITES (WREQ, never cloned)
//   * 2-fragment multi-packet requests (client-tuple ids, ClonedReqT)
//   * TCP-mode retransmission recovering the flap's losses
//   * bursty (MMPP) arrivals
//   * 4 ordered filter tables
#include <gtest/gtest.h>

#include "baselines/netclone_racksched.hpp"
#include "harness/experiment.hpp"
#include "kv/kv_workload.hpp"

namespace netclone::harness {
namespace {

TEST(KitchenSink, AllFeaturesCompose) {
  auto store = std::make_shared<kv::KvStore>(20000);
  kv::populate(*store, 20000);
  kv::KvMix mix;
  mix.get_fraction = 0.80;
  mix.set_fraction = 0.10;
  mix.num_keys = 20000;
  const kv::KvCostProfile profile = kv::redis_profile();
  auto factory = std::make_shared<kv::KvRequestFactory>(mix, profile);

  ClusterConfig cfg;
  cfg.scheme = Scheme::kNetClone;
  cfg.server_workers = {8, 8, 8, 8};
  cfg.factory = factory;
  cfg.service = std::make_shared<kv::KvService>(
      store, profile, host::JitterModel{0.01, 15.0, 0.08});
  cfg.warmup = SimTime::zero();
  cfg.measure = SimTime::milliseconds(30);
  cfg.drain = SimTime::milliseconds(30);
  cfg.netclone.id_mode = core::RequestIdMode::kClientTuple;
  cfg.netclone.enable_multipacket = true;
  cfg.netclone.num_filter_tables = 4;
  cfg.client_template.request_fragments = 2;
  cfg.client_template.arrival = host::ArrivalProcess::kBursty;
  cfg.client_template.retransmit_timeout = SimTime::milliseconds(2);
  cfg.client_template.max_retransmits = 8;
  cfg.server_template.response_fragments = 2;
  cfg.offered_rps = 0.25 * cluster_capacity_rps(
                               cfg.server_workers,
                               factory->mean_intrinsic_us() * 1.14);

  Experiment experiment{cfg};
  experiment.scheduler().schedule_at(SimTime::milliseconds(10),
                                     [&] { experiment.tor().fail(); });
  experiment.scheduler().schedule_at(SimTime::milliseconds(13),
                                     [&] { experiment.tor().recover(); });
  const ExperimentResult result = experiment.run();

  std::uint64_t sent = 0;
  std::uint64_t completed = 0;
  std::uint64_t retransmissions = 0;
  std::uint64_t redundant = 0;
  for (const host::Client* client : experiment.clients()) {
    sent += client->stats().requests_sent;
    completed += client->stats().completed;
    retransmissions += client->stats().retransmissions;
    redundant += client->stats().redundant_responses;
  }

  // Retransmission recovered the outage: everything completes.
  EXPECT_GT(retransmissions, 10U);
  EXPECT_EQ(completed, sent);

  const auto& ps = experiment.netclone_program()->stats();
  EXPECT_GT(ps.write_requests, 0U);            // writes flowed (uncloned)
  EXPECT_GT(ps.cloned_requests, 0U);           // reads cloned
  EXPECT_GT(ps.continuation_fragments, 0U);    // multipacket active
  EXPECT_GT(ps.cloned_fragments, 0U);          // follow-ups cloned too
  EXPECT_GT(ps.filtered_responses, 0U);        // ordered filters working

  std::uint64_t reassembled = 0;
  for (const host::Server* server : experiment.servers()) {
    reassembled += server->stats().reassembled_requests;
  }
  EXPECT_GT(reassembled, 0U);

  // Redundancy reaching clients stays at collision/retransmit level.
  EXPECT_LT(static_cast<double>(redundant), 0.1 * static_cast<double>(sent));
  EXPECT_GT(result.p99.ns(), 0);
}

TEST(KitchenSink, IntegrationRejectsMultipacket) {
  pisa::Pipeline pipeline;
  core::NetCloneConfig cfg;
  cfg.id_mode = core::RequestIdMode::kClientTuple;
  cfg.enable_multipacket = true;
  EXPECT_THROW((void)baselines::NetCloneRackSchedProgram(pipeline, cfg),
               CheckFailure);
}

}  // namespace
}  // namespace netclone::harness
