// Pipeline fast-path properties:
//   * FlatMap64 (the flat open-addressing storage behind ExactMatchTable)
//     agrees with std::unordered_map under randomized churn, survives
//     crafted collision chains and backward-shift deletion, and grows
//     while preserving every entry.
//   * Randomized pipeline programs produce results identical to a plain
//     (map + vector) reference model. This test is built in both the
//     checked and the unchecked lane, so passing in both proves the two
//     NETCLONE_PIPELINE_CHECKS modes compute the same packets.
//   * In checked builds, illegal programs (double access, backward stage
//     order) still abort.
#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/flat_map.hpp"
#include "common/hash.hpp"
#include "common/rng.hpp"
#include "pisa/pipeline.hpp"
#include "pisa/resources.hpp"

namespace netclone {
namespace {

// Mirrors FlatMap64's (private) home-slot computation so tests can craft
// colliding keys through the public slot_count() hook.
std::size_t home_slot(std::uint64_t key, std::size_t slot_count) {
  return static_cast<std::size_t>(mix64(key)) & (slot_count - 1);
}

// Returns `n` distinct keys that all hash to the same home slot of a map
// with `slot_count` slots.
std::vector<std::uint64_t> colliding_keys(std::size_t n,
                                          std::size_t slot_count) {
  std::vector<std::uint64_t> keys;
  const std::size_t target = home_slot(1, slot_count);
  for (std::uint64_t k = 1; keys.size() < n; ++k) {
    if (home_slot(k, slot_count) == target) {
      keys.push_back(k);
    }
  }
  return keys;
}

TEST(FlatMap64, BasicInsertFindErase) {
  FlatMap64<int> map;
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.find(7), nullptr);
  EXPECT_TRUE(map.insert_or_assign(7, 70));
  EXPECT_FALSE(map.insert_or_assign(7, 71));  // overwrite, not new
  ASSERT_NE(map.find(7), nullptr);
  EXPECT_EQ(*map.find(7), 71);
  EXPECT_EQ(map.size(), 1U);
  EXPECT_TRUE(map.erase(7));
  EXPECT_FALSE(map.erase(7));
  EXPECT_TRUE(map.empty());
}

TEST(FlatMap64, ReservePresizesAndPreventsRehash) {
  FlatMap64<int> map{100};
  const std::size_t slots = map.slot_count();
  EXPECT_GE(slots, 128U);  // 100 entries need >= 134 slots at 3/4 load
  for (std::uint64_t k = 0; k < 100; ++k) {
    map.insert_or_assign(k, static_cast<int>(k));
  }
  EXPECT_EQ(map.slot_count(), slots);  // no growth while within capacity
  EXPECT_EQ(map.size(), 100U);
}

TEST(FlatMap64, CollisionChainLookups) {
  FlatMap64<int> map{16};
  const auto keys = colliding_keys(5, map.slot_count());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    map.insert_or_assign(keys[i], static_cast<int>(i));
  }
  for (std::size_t i = 0; i < keys.size(); ++i) {
    ASSERT_NE(map.find(keys[i]), nullptr) << "key " << keys[i];
    EXPECT_EQ(*map.find(keys[i]), static_cast<int>(i));
  }
  EXPECT_EQ(map.find(keys.back() + 1000), nullptr);
}

TEST(FlatMap64, BackwardShiftEraseKeepsChainsReachable) {
  FlatMap64<int> map{16};
  const auto keys = colliding_keys(6, map.slot_count());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    map.insert_or_assign(keys[i], static_cast<int>(i));
  }
  // Erase from the middle of the probe chain: without backward shifting
  // (or tombstones) the tail of the chain would become unreachable.
  EXPECT_TRUE(map.erase(keys[2]));
  EXPECT_TRUE(map.erase(keys[0]));
  for (std::size_t i = 0; i < keys.size(); ++i) {
    if (i == 0 || i == 2) {
      EXPECT_EQ(map.find(keys[i]), nullptr);
    } else {
      ASSERT_NE(map.find(keys[i]), nullptr) << "key " << keys[i];
      EXPECT_EQ(*map.find(keys[i]), static_cast<int>(i));
    }
  }
  EXPECT_EQ(map.size(), 4U);
}

TEST(FlatMap64, GrowthRehashPreservesEntries) {
  FlatMap64<std::uint64_t> map;  // starts at the minimum slot count
  constexpr std::uint64_t kCount = 5000;
  for (std::uint64_t k = 0; k < kCount; ++k) {
    map.insert_or_assign(k * 0x9E3779B97F4A7C15ULL, k);
  }
  EXPECT_EQ(map.size(), kCount);
  // Power-of-two slot count.
  EXPECT_EQ(map.slot_count() & (map.slot_count() - 1), 0U);
  for (std::uint64_t k = 0; k < kCount; ++k) {
    const auto* v = map.find(k * 0x9E3779B97F4A7C15ULL);
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(*v, k);
  }
}

TEST(FlatMap64, RandomizedChurnAgreesWithUnorderedMap) {
  Rng rng{2026};
  FlatMap64<std::uint32_t> map;
  std::unordered_map<std::uint64_t, std::uint32_t> ref;
  for (int op = 0; op < 20000; ++op) {
    // Small key space so inserts, overwrites, and erases all collide.
    const std::uint64_t key = rng.next_below(512);
    const auto action = rng.next_below(4);
    if (action < 2) {
      const auto value = rng.next_u32();
      EXPECT_EQ(map.insert_or_assign(key, value), !ref.count(key));
      ref[key] = value;
    } else if (action == 2) {
      EXPECT_EQ(map.erase(key), ref.erase(key) > 0);
    } else {
      const auto* found = map.find(key);
      const auto it = ref.find(key);
      ASSERT_EQ(found != nullptr, it != ref.end()) << "key " << key;
      if (found != nullptr) {
        EXPECT_EQ(*found, it->second);
      }
    }
    ASSERT_EQ(map.size(), ref.size());
  }
  // for_each visits exactly the reference contents.
  std::size_t visited = 0;
  map.for_each([&](std::uint64_t key, std::uint32_t value) {
    ++visited;
    const auto it = ref.find(key);
    ASSERT_NE(it, ref.end());
    EXPECT_EQ(value, it->second);
  });
  EXPECT_EQ(visited, ref.size());
}

TEST(ExactMatchTable, FindAndLookupAgree) {
  pisa::Pipeline pipeline;
  pisa::ExactMatchTable<int> table{pipeline, "T", 0, 8, 4, 4};
  table.insert(5, 50);
  {
    pisa::PipelinePass pass{pipeline};
    const int* hit = table.find(pass, 5);
    ASSERT_NE(hit, nullptr);
    EXPECT_EQ(*hit, 50);
  }
  {
    pisa::PipelinePass pass{pipeline};
    EXPECT_EQ(table.lookup(pass, 5), 50);
  }
  {
    pisa::PipelinePass pass{pipeline};
    EXPECT_EQ(table.find(pass, 6), nullptr);
  }
  {
    pisa::PipelinePass pass{pipeline};
    EXPECT_EQ(table.lookup(pass, 6), std::nullopt);
  }
}

TEST(ExactMatchTable, ControlPlaneDeleteThenReuseCapacity) {
  pisa::Pipeline pipeline;
  pisa::ExactMatchTable<int> table{pipeline, "T", 0, 2, 4, 4};
  table.insert(1, 10);
  table.insert(2, 20);
  EXPECT_THROW(table.insert(3, 30), CheckFailure);  // at capacity
  table.erase(1);
  EXPECT_NO_THROW(table.insert(3, 30));  // deletion frees the slot
  pisa::PipelinePass pass{pipeline};
  EXPECT_EQ(table.find(pass, 1), nullptr);
  EXPECT_EQ(table.entry_count(), 2U);
}

// Reference model for the randomized program equivalence test: plain
// containers with none of the pipeline's structure.
struct ReferenceModel {
  std::unordered_map<std::uint64_t, std::uint32_t> table;
  std::vector<std::uint32_t> reg;
  std::uint32_t seq = 0;
};

// One randomized "packet": a table lookup, a register read-modify-write,
// and a sequence-counter bump, composed the way the NetClone program
// composes them. Returns a digest of everything the packet observed.
std::uint64_t run_fast_packet(pisa::Pipeline& pipeline,
                              pisa::ExactMatchTable<std::uint32_t>& table,
                              pisa::RegisterArray<std::uint32_t>& reg,
                              pisa::RegisterScalar<std::uint32_t>& seq,
                              std::uint64_t key, std::size_t idx,
                              std::uint32_t delta) {
  pisa::PipelinePass pass{pipeline};
  const std::uint32_t* hit = table.find(pass, key);
  const std::uint32_t table_value = hit != nullptr ? *hit : 0xFFFFFFFFU;
  const std::uint32_t reg_value =
      reg.execute(pass, idx, [delta](std::uint32_t& cell) {
        cell += delta;
        return cell;
      });
  const std::uint32_t seq_value =
      seq.execute(pass, [](std::uint32_t& c) { return ++c; });
  return (static_cast<std::uint64_t>(table_value) << 32) ^ reg_value ^
         (static_cast<std::uint64_t>(seq_value) << 16);
}

std::uint64_t run_reference_packet(ReferenceModel& model, std::uint64_t key,
                                   std::size_t idx, std::uint32_t delta) {
  const auto it = model.table.find(key);
  const std::uint32_t table_value =
      it != model.table.end() ? it->second : 0xFFFFFFFFU;
  model.reg[idx] += delta;
  const std::uint32_t reg_value = model.reg[idx];
  const std::uint32_t seq_value = ++model.seq;
  return (static_cast<std::uint64_t>(table_value) << 32) ^ reg_value ^
         (static_cast<std::uint64_t>(seq_value) << 16);
}

// The central property: the pipeline fast path computes exactly what the
// plain reference model computes, packet for packet, across randomized
// control-plane updates. Running this in the default (unchecked) ctest
// lane AND the checked lane proves the two check modes are observationally
// identical.
TEST(PipelineFastpath, RandomizedProgramMatchesReferenceModel) {
  constexpr std::size_t kRegSize = 64;
  constexpr std::size_t kTableCapacity = 256;
  pisa::Pipeline pipeline;
  pisa::ExactMatchTable<std::uint32_t> table{pipeline, "T", 1,
                                             kTableCapacity, 8, 4};
  pisa::RegisterArray<std::uint32_t> reg{pipeline, "R", 3, kRegSize};
  pisa::RegisterScalar<std::uint32_t> seq{pipeline, "SEQ", 5};
  ReferenceModel model;
  model.reg.assign(kRegSize, 0);

  Rng rng{77};
  for (int round = 0; round < 5000; ++round) {
    const auto action = rng.next_below(10);
    if (action == 0 && model.table.size() < kTableCapacity) {
      const std::uint64_t key = rng.next_below(1024);
      const std::uint32_t value = rng.next_u32();
      if (model.table.size() < kTableCapacity ||
          model.table.count(key) != 0) {
        table.insert(key, value);
        model.table[key] = value;
      }
    } else if (action == 1) {
      const std::uint64_t key = rng.next_below(1024);
      table.erase(key);
      model.table.erase(key);
    } else {
      const std::uint64_t key = rng.next_below(1024);
      const auto idx = static_cast<std::size_t>(rng.next_below(kRegSize));
      const auto delta = static_cast<std::uint32_t>(rng.next_below(1000));
      ASSERT_EQ(run_fast_packet(pipeline, table, reg, seq, key, idx, delta),
                run_reference_packet(model, key, idx, delta))
          << "diverged at round " << round;
    }
  }
  // Final state agrees too.
  EXPECT_EQ(table.entry_count(), model.table.size());
  for (std::size_t i = 0; i < kRegSize; ++i) {
    EXPECT_EQ(reg.peek(i), model.reg[i]) << "register cell " << i;
  }
  EXPECT_EQ(seq.peek(), model.seq);
}

// Soft-state reset (switch failure) keeps the two models aligned as well:
// registers restart zeroed, match entries survive.
TEST(PipelineFastpath, ResetSoftStateMatchesReferenceModel) {
  pisa::Pipeline pipeline;
  pisa::ExactMatchTable<std::uint32_t> table{pipeline, "T", 1, 16, 8, 4};
  pisa::RegisterArray<std::uint32_t> reg{pipeline, "R", 3, 8};
  pisa::RegisterScalar<std::uint32_t> seq{pipeline, "SEQ", 5};
  table.insert(3, 33);
  {
    pisa::PipelinePass pass{pipeline};
    reg.write(pass, 2, 9);
  }
  pipeline.reset_soft_state();
  EXPECT_EQ(reg.peek(2), 0U);
  EXPECT_EQ(seq.peek(), 0U);
  pisa::PipelinePass pass{pipeline};
  const std::uint32_t* hit = table.find(pass, 3);
  ASSERT_NE(hit, nullptr);  // control-plane entries survive the reboot
  EXPECT_EQ(*hit, 33U);
}

TEST(PipelineFastpath, ChecksEnabledMatchesBuildMode) {
  EXPECT_EQ(pisa::pipeline_checks_enabled(), NETCLONE_PIPELINE_CHECKS != 0);
}

#if NETCLONE_PIPELINE_CHECKS
// Checked builds must still reject illegal programs — the legality net the
// release build relies on having been run.
TEST(PipelineFastpath, CheckedBuildRejectsDoubleAccess) {
  pisa::Pipeline pipeline;
  pisa::RegisterArray<std::uint32_t> reg{pipeline, "R", 3, 8};
  pisa::PipelinePass pass{pipeline};
  (void)reg.read(pass, 0);
  EXPECT_THROW((void)reg.read(pass, 1), CheckFailure);
}

TEST(PipelineFastpath, CheckedBuildRejectsBackwardStageOrder) {
  pisa::Pipeline pipeline;
  pisa::ExactMatchTable<std::uint32_t> early{pipeline, "E", 1, 4, 4, 4};
  pisa::RegisterArray<std::uint32_t> late{pipeline, "L", 6, 8};
  pisa::PipelinePass pass{pipeline};
  (void)late.read(pass, 0);
  EXPECT_THROW((void)early.find(pass, 1), CheckFailure);
}
#endif  // NETCLONE_PIPELINE_CHECKS

}  // namespace
}  // namespace netclone
