#include "wire/frame.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace netclone::wire {
namespace {

Packet sample_packet() {
  NetCloneHeader nc;
  nc.type = MsgType::kRequest;
  nc.grp = 12;
  nc.idx = 1;
  nc.client_id = 3;
  nc.client_seq = 99;
  Frame payload{std::byte{0xDE}, std::byte{0xAD}};
  return make_netclone_packet(MacAddress::from_node(1),
                              MacAddress::from_node(2),
                              Ipv4Address::from_octets(10, 0, 0, 1),
                              Ipv4Address::from_octets(10, 0, 255, 1), 40001,
                              nc, payload);
}

TEST(Packet, SerializeParseRoundTrip) {
  const Packet pkt = sample_packet();
  const Frame bytes = pkt.serialize();
  EXPECT_EQ(bytes.size(), pkt.wire_size());

  const Packet parsed = Packet::parse(bytes);
  EXPECT_EQ(parsed.eth.src, pkt.eth.src);
  EXPECT_EQ(parsed.eth.dst, pkt.eth.dst);
  EXPECT_EQ(parsed.ip.src, pkt.ip.src);
  EXPECT_EQ(parsed.ip.dst, pkt.ip.dst);
  EXPECT_EQ(parsed.udp.src_port, 40001);
  EXPECT_EQ(parsed.udp.dst_port, kNetClonePort);
  ASSERT_TRUE(parsed.has_netclone());
  EXPECT_EQ(parsed.nc().grp, 12);
  EXPECT_EQ(parsed.nc().client_seq, 99U);
  EXPECT_EQ(parsed.payload, pkt.payload);
}

TEST(Packet, SerializedChecksumsAreValid) {
  const Frame bytes = sample_packet().serialize();
  const Packet parsed = Packet::parse(bytes);
  EXPECT_TRUE(parsed.ip.checksum_valid());

  // Recompute the UDP checksum over the serialized segment: zeroing the
  // checksum field and re-running the computation must reproduce it.
  Frame segment{bytes.begin() + EthernetHeader::kSize + Ipv4Header::kSize,
                bytes.end()};
  const std::uint16_t stored = peek_u16(segment, 6);
  poke_u16(segment, 6, 0);
  EXPECT_EQ(udp_checksum(parsed.ip.src, parsed.ip.dst, segment), stored);
}

TEST(Packet, LengthsAreComputedOnSerialize) {
  Packet pkt = sample_packet();
  pkt.ip.total_length = 9999;  // stale values must be ignored
  pkt.udp.length = 1;
  const Packet parsed = Packet::parse(pkt.serialize());
  EXPECT_EQ(parsed.ip.total_length,
            Ipv4Header::kSize + UdpHeader::kSize + NetCloneHeader::kSize +
                pkt.payload.size());
  EXPECT_EQ(parsed.udp.length,
            UdpHeader::kSize + NetCloneHeader::kSize + pkt.payload.size());
}

TEST(Packet, DstRewriteStillChecksumsClean) {
  // The switch rewrites ip.dst (AddrT) and reserializes; both checksums
  // must remain valid — this is the deparser behaviour tests rely on.
  Packet pkt = sample_packet();
  pkt.ip.dst = Ipv4Address::from_octets(10, 0, 1, 105);
  const Packet parsed = Packet::parse(pkt.serialize());
  EXPECT_TRUE(parsed.ip.checksum_valid());
  EXPECT_EQ(parsed.ip.dst, Ipv4Address::from_octets(10, 0, 1, 105));
}

TEST(Packet, NonNetClonePortHasNoHeader) {
  Packet pkt = sample_packet();
  pkt.udp.src_port = 1111;
  pkt.udp.dst_port = 2222;
  pkt.netclone.reset();
  pkt.payload = Frame{std::byte{1}};
  const Packet parsed = Packet::parse(pkt.serialize());
  EXPECT_FALSE(parsed.has_netclone());
  EXPECT_EQ(parsed.payload.size(), 1U);
  EXPECT_THROW((void)parsed.nc(), CheckFailure);
}

TEST(Packet, ResponderPortStillParsesNetClone) {
  // Responses carry the NetClone port as *source*; parsing must find the
  // header in that direction too.
  Packet pkt = sample_packet();
  pkt.udp.src_port = kNetClonePort;
  pkt.udp.dst_port = 40001;
  pkt.nc().type = MsgType::kResponse;
  const Packet parsed = Packet::parse(pkt.serialize());
  ASSERT_TRUE(parsed.has_netclone());
  EXPECT_TRUE(parsed.nc().is_response());
}

TEST(Packet, TruncatedFrameThrows) {
  Frame bytes = sample_packet().serialize();
  bytes.resize(bytes.size() - 10);
  EXPECT_THROW((void)Packet::parse(bytes), CodecError);
}

TEST(Packet, NonIpv4Throws) {
  Frame bytes = sample_packet().serialize();
  bytes[12] = std::byte{0x08};
  bytes[13] = std::byte{0x06};  // ARP
  EXPECT_THROW((void)Packet::parse(bytes), CodecError);
}

TEST(Packet, NonUdpThrows) {
  Frame bytes = sample_packet().serialize();
  bytes[14 + 9] = std::byte{6};  // protocol = TCP
  EXPECT_THROW((void)Packet::parse(bytes), CodecError);
}

TEST(Packet, EmptyPayloadRoundTrips) {
  Packet pkt = sample_packet();
  pkt.payload.clear();
  const Packet parsed = Packet::parse(pkt.serialize());
  EXPECT_TRUE(parsed.payload.empty());
  EXPECT_TRUE(parsed.has_netclone());
}

}  // namespace
}  // namespace netclone::wire
