// Integration tests: whole clusters, end to end, on short schedules.
#include "harness/experiment.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "harness/report.hpp"
#include "pisa/audit.hpp"
#include "host/service.hpp"
#include "host/workload.hpp"

namespace netclone::harness {
namespace {

ClusterConfig small_cluster(Scheme scheme, double load_fraction) {
  ClusterConfig cfg;
  cfg.scheme = scheme;
  cfg.server_workers = {8, 8, 8, 8};
  cfg.factory = std::make_shared<host::ExponentialWorkload>(25.0);
  cfg.service =
      std::make_shared<host::SyntheticService>(host::JitterModel{0.01, 15.0});
  cfg.warmup = SimTime::milliseconds(2);
  cfg.measure = SimTime::milliseconds(8);
  cfg.drain = SimTime::milliseconds(10);
  const double capacity = cluster_capacity_rps(cfg.server_workers,
                                               25.0 * 1.14);
  cfg.offered_rps = capacity * load_fraction;
  return cfg;
}

TEST(CapacityHelper, Math) {
  const std::vector<std::uint32_t> workers{16, 16};
  EXPECT_DOUBLE_EQ(cluster_capacity_rps(workers, 25.0), 32.0 * 1e6 / 25.0);
  EXPECT_THROW((void)cluster_capacity_rps(workers, 0.0), CheckFailure);
}

TEST(SchemeNames, AllDistinct) {
  std::set<std::string> names;
  for (const Scheme s :
       {Scheme::kBaseline, Scheme::kCClone, Scheme::kLaedge,
        Scheme::kNetClone, Scheme::kNetCloneNoFilter, Scheme::kRackSched,
        Scheme::kNetCloneRackSched}) {
    EXPECT_TRUE(names.insert(scheme_name(s)).second);
  }
}

TEST(Experiment, ConfigValidation) {
  ClusterConfig cfg = small_cluster(Scheme::kNetClone, 0.3);
  cfg.factory = nullptr;
  EXPECT_THROW(Experiment{cfg}, CheckFailure);
  cfg = small_cluster(Scheme::kNetClone, 0.3);
  cfg.server_workers = {8};
  EXPECT_THROW(Experiment{cfg}, CheckFailure);
  cfg = small_cluster(Scheme::kNetClone, 0.3);
  cfg.num_clients = 0;
  EXPECT_THROW(Experiment{cfg}, CheckFailure);
}

TEST(Experiment, DeterministicForSeed) {
  const ClusterConfig cfg = small_cluster(Scheme::kNetClone, 0.4);
  Experiment e1{cfg};
  Experiment e2{cfg};
  const ExperimentResult r1 = e1.run();
  const ExperimentResult r2 = e2.run();
  EXPECT_EQ(r1.completed, r2.completed);
  EXPECT_EQ(r1.p99, r2.p99);
  EXPECT_EQ(r1.cloned_requests, r2.cloned_requests);
  EXPECT_EQ(r1.filtered_responses, r2.filtered_responses);
}

TEST(Experiment, SeedChangesOutcome) {
  ClusterConfig cfg = small_cluster(Scheme::kNetClone, 0.4);
  Experiment e1{cfg};
  cfg.seed = 999;
  Experiment e2{cfg};
  EXPECT_NE(e1.run().completed, e2.run().completed);
}

// Every scheme must run a low-load cluster to (near-)complete conservation:
// every measured request gets exactly one accepted response.
class SchemeSweep : public ::testing::TestWithParam<Scheme> {};

TEST_P(SchemeSweep, LowLoadConservation) {
  ClusterConfig cfg = small_cluster(GetParam(), 0.2);
  if (GetParam() == Scheme::kLaedge) {
    // The coordinator saturates around 1/7 us per request; stay below.
    cfg.offered_rps = 60000.0;
  }
  Experiment experiment{cfg};
  const ExperimentResult result = experiment.run();

  EXPECT_GT(result.requests_sent, 100U);
  EXPECT_GT(result.completed, 0U);
  // After drain, every client request completed (no losses at low load).
  std::uint64_t completed_total = 0;
  std::uint64_t redundant = 0;
  for (const host::Client* client : experiment.clients()) {
    completed_total += client->stats().completed;
    redundant += client->stats().redundant_responses;
  }
  EXPECT_EQ(completed_total, result.requests_sent);
  // Achieved rate tracks offered rate at this load.
  EXPECT_NEAR(result.achieved_rps, cfg.offered_rps,
              cfg.offered_rps * 0.08);
  EXPECT_GT(result.p99.ns(), 0);
  EXPECT_GE(result.p99, result.p50);

  if (GetParam() == Scheme::kNetClone ||
      GetParam() == Scheme::kNetCloneRackSched) {
    EXPECT_GT(result.cloned_requests, 0U);
    EXPECT_GT(result.filtered_responses, 0U);
    // Filtering keeps redundancy away from clients (collisions aside).
    EXPECT_LT(static_cast<double>(redundant),
              static_cast<double>(result.cloned_requests) * 0.01 + 2.0);
  }
  if (GetParam() == Scheme::kCClone) {
    // The client handles every duplicate itself.
    EXPECT_GT(redundant, 0U);
  }
  if (GetParam() == Scheme::kNetCloneNoFilter) {
    EXPECT_GT(result.cloned_requests, 0U);
    EXPECT_EQ(result.filtered_responses, 0U);
    EXPECT_GT(redundant, 0U);  // duplicates reach the client unfiltered
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, SchemeSweep,
    ::testing::Values(Scheme::kBaseline, Scheme::kCClone, Scheme::kLaedge,
                      Scheme::kNetClone, Scheme::kNetCloneNoFilter,
                      Scheme::kRackSched, Scheme::kNetCloneRackSched),
    [](const ::testing::TestParamInfo<Scheme>& param_info) {
      std::string name = scheme_name(param_info.param);
      for (char& c : name) {
        if (c == '-' || c == '+') {
          c = '_';
        }
      }
      return name;
    });

TEST(Experiment, NetCloneAccountingConsistent) {
  Experiment experiment{small_cluster(Scheme::kNetClone, 0.3)};
  const ExperimentResult result = experiment.run();
  const auto& prog = *experiment.netclone_program();

  // Every cloned request either had its duplicate filtered at the switch,
  // its clone dropped at a busy server, or leaked one redundant response
  // to the client (collision overwrite) — nothing disappears silently.
  std::uint64_t redundant = 0;
  for (const host::Client* client : experiment.clients()) {
    redundant += client->stats().redundant_responses;
  }
  std::uint64_t stale = 0;
  for (const host::Server* server : experiment.servers()) {
    stale += server->stats().dropped_stale_clones;
  }
  EXPECT_EQ(prog.stats().cloned_requests,
            prog.stats().filtered_responses + stale + redundant);
  // Recirculated copies equal cloned requests (one loopback per clone).
  EXPECT_EQ(prog.stats().recirculated_clones, prog.stats().cloned_requests);
  EXPECT_EQ(result.switch_stats.recirculated,
            prog.stats().cloned_requests);
}

TEST(Experiment, EmptyQueueFractionDropsWithLoad) {
  // Fig. 13 (a): the state signal weakens as load grows.
  Experiment low{small_cluster(Scheme::kBaseline, 0.15)};
  Experiment high{small_cluster(Scheme::kBaseline, 0.85)};
  const double f_low = low.run().empty_queue_fraction;
  const double f_high = high.run().empty_queue_fraction;
  EXPECT_GT(f_low, 0.9);
  EXPECT_LT(f_high, f_low);
  EXPECT_GT(f_high, 0.0);
}

TEST(Experiment, TimelineWithSwitchFailureRecovers) {
  // Fig. 16 in miniature: fail at 6 ms, recover at 10 ms, 20 ms total.
  ClusterConfig cfg = small_cluster(Scheme::kNetClone, 0.4);
  cfg.warmup = SimTime::zero();
  cfg.measure = SimTime::milliseconds(20);
  Experiment experiment{cfg};
  const auto bins = experiment.run_timeline(
      SimTime::milliseconds(20), SimTime::milliseconds(2),
      SimTime::milliseconds(6), SimTime::milliseconds(10));
  ASSERT_EQ(bins.size(), 10U);
  EXPECT_GT(bins[1], 0U);   // healthy before failure
  EXPECT_EQ(bins[4], 0U);   // 8-10 ms: switch down, nothing completes
  EXPECT_GT(bins[7], 0U);   // recovered
  // Post-recovery throughput returns to the pre-failure level.
  EXPECT_NEAR(static_cast<double>(bins[8]), static_cast<double>(bins[1]),
              static_cast<double>(bins[1]) * 0.35);
}

TEST(Experiment, SweepHelperRunsAllPoints) {
  const ClusterConfig cfg = small_cluster(Scheme::kBaseline, 0.1);
  const auto points =
      run_sweep(cfg, cluster_capacity_rps(cfg.server_workers, 28.5),
                {0.2, 0.5});
  ASSERT_EQ(points.size(), 2U);
  EXPECT_LT(points[0].result.achieved_rps, points[1].result.achieved_rps);
  EXPECT_DOUBLE_EQ(points[0].load_fraction, 0.2);
}

TEST(Experiment, HeterogeneousWorkerCounts) {
  ClusterConfig cfg = small_cluster(Scheme::kNetCloneRackSched, 0.5);
  cfg.server_workers = {15, 15, 15, 8, 8, 8};  // Fig. 10 heterogeneous setup
  Experiment experiment{cfg};
  const ExperimentResult result = experiment.run();
  EXPECT_GT(result.completed, 0U);
  EXPECT_GT(result.cloned_requests, 0U);
}

TEST(Experiment, ResourceAuditMatchesPaperScale) {
  // §4.1: 7 stages, ~1 MB SRAM (~4.8% of the ASIC) with 2 x 2^17 slots.
  Experiment experiment{small_cluster(Scheme::kNetClone, 0.1)};
  const auto report = pisa::audit(experiment.tor().pipeline());
  EXPECT_EQ(report.stages_used, 7U);
  EXPECT_NEAR(report.sram_fraction, 0.0477, 0.005);
}

}  // namespace
}  // namespace netclone::harness
