#include "baselines/netclone_racksched.hpp"
#include "baselines/racksched_program.hpp"

#include <gtest/gtest.h>

#include "core/groups.hpp"
#include "test_util.hpp"

namespace netclone::baselines {
namespace {

using netclone::testing::make_request;
using netclone::testing::make_response;
using netclone::testing::run_ingress;

constexpr std::size_t kPortSrv0 = 10;
constexpr std::size_t kPortSrv1 = 11;
constexpr std::size_t kPortClient = 20;

class RackSchedTest : public ::testing::Test {
 protected:
  RackSchedTest() : program_(pipeline_, 16, /*rng_seed=*/7) {
    program_.add_server(ServerId{0}, host::server_ip(ServerId{0}), kPortSrv0);
    program_.add_server(ServerId{1}, host::server_ip(ServerId{1}), kPortSrv1);
    program_.add_route(host::client_ip(0), kPortClient);
  }

  void set_load(ServerId sid, std::uint16_t qlen) {
    wire::Packet req = make_request(0, 1, 0, 0);
    wire::Packet resp = make_response(sid, qlen, req);
    (void)run_ingress(program_, pipeline_, resp);
  }

  pisa::Pipeline pipeline_;
  RackSchedProgram program_;
};

TEST_F(RackSchedTest, ForwardsToSomeServerInitially) {
  wire::Packet pkt = make_request(0, 1, 0, 0);
  const auto md = run_ingress(program_, pipeline_, pkt);
  ASSERT_TRUE(md.egress_port.has_value());
  EXPECT_TRUE(*md.egress_port == kPortSrv0 || *md.egress_port == kPortSrv1);
  EXPECT_TRUE(pkt.ip.dst == host::server_ip(ServerId{0}) ||
              pkt.ip.dst == host::server_ip(ServerId{1}));
}

TEST_F(RackSchedTest, JoinsTheShorterQueue) {
  set_load(ServerId{0}, 9);
  set_load(ServerId{1}, 0);
  // With two servers, po2c always samples both; the min must win.
  for (int i = 0; i < 50; ++i) {
    wire::Packet pkt = make_request(0, 1, 0, 0);
    const auto md = run_ingress(program_, pipeline_, pkt);
    EXPECT_EQ(*md.egress_port, kPortSrv1);
  }
}

TEST_F(RackSchedTest, LoadUpdateFlipsDecision) {
  set_load(ServerId{0}, 9);
  set_load(ServerId{1}, 0);
  set_load(ServerId{0}, 0);
  set_load(ServerId{1}, 5);
  for (int i = 0; i < 50; ++i) {
    wire::Packet pkt = make_request(0, 1, 0, 0);
    const auto md = run_ingress(program_, pipeline_, pkt);
    EXPECT_EQ(*md.egress_port, kPortSrv0);
  }
}

TEST_F(RackSchedTest, ResponsesRoutedToClient) {
  wire::Packet req = make_request(0, 1, 0, 0);
  wire::Packet resp = make_response(ServerId{0}, 2, req);
  const auto md = run_ingress(program_, pipeline_, resp);
  EXPECT_EQ(*md.egress_port, kPortClient);
  EXPECT_EQ(program_.stats().responses, 1U);
}

TEST_F(RackSchedTest, EqualLoadsSpreadAcrossBoth) {
  int to_zero = 0;
  for (int i = 0; i < 200; ++i) {
    wire::Packet pkt = make_request(0, 1, 0, 0);
    const auto md = run_ingress(program_, pipeline_, pkt);
    to_zero += *md.egress_port == kPortSrv0 ? 1 : 0;
  }
  // Ties break toward the first sample, which is uniform: expect a split.
  EXPECT_GT(to_zero, 50);
  EXPECT_LT(to_zero, 150);
}

class IntegrationTest : public ::testing::Test {
 protected:
  IntegrationTest() : program_(pipeline_, make_config()) {
    program_.add_server(ServerId{0}, host::server_ip(ServerId{0}), kPortSrv0,
                        1);
    program_.add_server(ServerId{1}, host::server_ip(ServerId{1}), kPortSrv1,
                        2);
    program_.install_groups(core::build_group_pairs(2));
    program_.add_route(host::client_ip(0), kPortClient);
  }

  static core::NetCloneConfig make_config() {
    core::NetCloneConfig cfg;
    cfg.filter_slots = 64;
    return cfg;
  }

  void set_load(ServerId sid, std::uint16_t qlen) {
    wire::Packet req = make_request(0, 1, 0, 0);
    wire::Packet resp = make_response(sid, qlen, req);
    (void)run_ingress(program_, pipeline_, resp);
  }

  pisa::Pipeline pipeline_;
  NetCloneRackSchedProgram program_;
};

TEST_F(IntegrationTest, BothQueuesEmptyClones) {
  wire::Packet pkt = make_request(0, 1, /*grp=*/0, 0);
  const auto md = run_ingress(program_, pipeline_, pkt);
  ASSERT_TRUE(md.multicast_group.has_value());
  EXPECT_EQ(pkt.nc().clo, wire::CloneStatus::kClonedOriginal);
  EXPECT_EQ(pkt.nc().sid, 1);
  EXPECT_EQ(program_.stats().cloned_requests, 1U);
}

TEST_F(IntegrationTest, FallsBackToJsqWhenBusy) {
  set_load(ServerId{0}, 5);
  set_load(ServerId{1}, 2);
  // Group 0 = {0, 1}: srv2 has the shorter queue -> JSQ picks it.
  wire::Packet pkt = make_request(0, 1, 0, 0);
  const auto md = run_ingress(program_, pipeline_, pkt);
  EXPECT_FALSE(md.multicast_group.has_value());
  EXPECT_EQ(*md.egress_port, kPortSrv1);
  EXPECT_EQ(pkt.ip.dst, host::server_ip(ServerId{1}));
  EXPECT_EQ(program_.stats().jsq_fallbacks, 1U);
  EXPECT_EQ(pkt.nc().clo, wire::CloneStatus::kNotCloned);
}

TEST_F(IntegrationTest, TieBreaksToFirstCandidate) {
  set_load(ServerId{0}, 3);
  set_load(ServerId{1}, 3);
  wire::Packet pkt = make_request(0, 1, 0, 0);
  const auto md = run_ingress(program_, pipeline_, pkt);
  EXPECT_EQ(*md.egress_port, kPortSrv0);
}

TEST_F(IntegrationTest, OneEmptyOneBusyJoinsEmpty) {
  set_load(ServerId{0}, 4);
  set_load(ServerId{1}, 0);
  // Not both empty -> no cloning, JSQ to the empty queue.
  wire::Packet pkt = make_request(0, 1, 0, 0);
  const auto md = run_ingress(program_, pipeline_, pkt);
  EXPECT_FALSE(md.multicast_group.has_value());
  EXPECT_EQ(*md.egress_port, kPortSrv1);
}

TEST_F(IntegrationTest, RecirculatedCloneSteered) {
  wire::Packet pkt = make_request(0, 1, 0, 0);
  (void)run_ingress(program_, pipeline_, pkt);
  wire::Packet clone = pkt;
  const auto md =
      run_ingress(program_, pipeline_, clone, 0, /*recirculated=*/true);
  EXPECT_EQ(clone.nc().clo, wire::CloneStatus::kClonedCopy);
  EXPECT_EQ(*md.egress_port, kPortSrv1);
}

TEST_F(IntegrationTest, FilteringStillWorks) {
  wire::Packet req = make_request(0, 1, 0, 0);
  req.nc().clo = wire::CloneStatus::kClonedOriginal;
  req.nc().req_id = 42;
  wire::Packet fast = make_response(ServerId{0}, 0, req);
  wire::Packet slow = make_response(ServerId{1}, 0, req);
  EXPECT_FALSE(run_ingress(program_, pipeline_, fast).drop);
  EXPECT_TRUE(run_ingress(program_, pipeline_, slow).drop);
  EXPECT_EQ(program_.stats().filtered_responses, 1U);
}

TEST_F(IntegrationTest, ResponseUpdatesLoadTables) {
  set_load(ServerId{1}, 7);
  // Load 7 on srv 1 blocks cloning for group 0 = {0, 1}.
  wire::Packet pkt = make_request(0, 1, 0, 0);
  const auto md = run_ingress(program_, pipeline_, pkt);
  EXPECT_FALSE(md.multicast_group.has_value());
  EXPECT_EQ(*md.egress_port, kPortSrv0);  // 0 < 7
}

}  // namespace
}  // namespace netclone::baselines
