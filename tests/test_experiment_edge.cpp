// Edge cases of the harness and the switch under churn: recirculation
// racing a failure, timeline binning, warmup boundaries, mixed-mode
// clients, and RackSched scheme internals at the cluster level.
#include <gtest/gtest.h>

#include "harness/experiment.hpp"
#include "host/service.hpp"
#include "host/workload.hpp"

namespace netclone::harness {
namespace {

ClusterConfig base_cfg(Scheme scheme) {
  ClusterConfig cfg;
  cfg.scheme = scheme;
  cfg.server_workers = {4, 4, 4};
  cfg.factory = std::make_shared<host::ExponentialWorkload>(25.0);
  cfg.service =
      std::make_shared<host::SyntheticService>(host::JitterModel{0.01, 15});
  cfg.warmup = SimTime::milliseconds(1);
  cfg.measure = SimTime::milliseconds(6);
  cfg.offered_rps =
      0.3 * cluster_capacity_rps(cfg.server_workers, 25.0 * 1.14);
  return cfg;
}

TEST(ExperimentEdge, FailureDuringActiveCloningDoesNotWedge) {
  // Fail the switch while clones are recirculating: in-flight loopback
  // frames die with the switch; on recovery everything must resume.
  ClusterConfig cfg = base_cfg(Scheme::kNetClone);
  cfg.warmup = SimTime::zero();
  cfg.measure = SimTime::milliseconds(12);
  Experiment experiment{cfg};
  for (int i = 0; i < 8; ++i) {
    const auto at = SimTime::milliseconds(2 + i);
    experiment.scheduler().schedule_at(at, [&experiment, i] {
      if (i % 2 == 0) {
        experiment.tor().fail();
      } else {
        experiment.tor().recover();
      }
    });
  }
  const ExperimentResult result = experiment.run();
  // Periods of service existed between the flaps.
  EXPECT_GT(result.completed, 0U);
  // And the final state is healthy: cloning kept happening.
  EXPECT_GT(result.cloned_requests, 0U);
  EXPECT_FALSE(experiment.tor().failed());
}

TEST(ExperimentEdge, TimelineBinsSumToCompletions) {
  ClusterConfig cfg = base_cfg(Scheme::kBaseline);
  cfg.warmup = SimTime::zero();
  cfg.measure = SimTime::milliseconds(10);
  Experiment experiment{cfg};
  const auto bins = experiment.run_timeline(SimTime::milliseconds(10),
                                            SimTime::milliseconds(1),
                                            std::nullopt, std::nullopt);
  ASSERT_EQ(bins.size(), 10U);
  std::uint64_t total = 0;
  for (const auto b : bins) {
    total += b;
  }
  std::uint64_t completed = 0;
  for (const host::Client* client : experiment.clients()) {
    completed += client->stats().completed;
  }
  EXPECT_EQ(total, completed);
}

TEST(ExperimentEdge, WarmupExcludesEarlySamples) {
  ClusterConfig cfg = base_cfg(Scheme::kBaseline);
  cfg.warmup = SimTime::milliseconds(3);
  cfg.measure = SimTime::milliseconds(3);
  Experiment experiment{cfg};
  const ExperimentResult result = experiment.run();
  std::uint64_t sent = 0;
  std::uint64_t measured = 0;
  for (const host::Client* client : experiment.clients()) {
    sent += client->stats().requests_sent;
    measured += client->stats().latency.count();
  }
  // Roughly half the sending window is warmup.
  EXPECT_LT(measured, sent);
  EXPECT_NEAR(static_cast<double>(measured),
              static_cast<double>(sent) / 2.0,
              static_cast<double>(sent) * 0.15);
  EXPECT_GT(result.p99.ns(), 0);
}

TEST(ExperimentEdge, SingleClientAndManyClientsAgreeOnThroughput) {
  ClusterConfig one = base_cfg(Scheme::kNetClone);
  one.num_clients = 1;
  ClusterConfig four = base_cfg(Scheme::kNetClone);
  four.num_clients = 4;
  Experiment e1{one};
  Experiment e4{four};
  const double t1 = e1.run().achieved_rps;
  const double t4 = e4.run().achieved_rps;
  EXPECT_NEAR(t1, t4, t1 * 0.1);  // same offered load, split differently
}

TEST(ExperimentEdge, RackSchedBeatsBaselineOnHeterogeneousCluster) {
  // The scheme-level sanity that motivates Fig. 10: random placement
  // overloads the weak servers, JSQ does not.
  ClusterConfig cfg = base_cfg(Scheme::kBaseline);
  cfg.server_workers = {8, 8, 2};
  cfg.warmup = SimTime::milliseconds(2);
  cfg.measure = SimTime::milliseconds(12);
  cfg.offered_rps =
      0.75 * cluster_capacity_rps(cfg.server_workers, 25.0 * 1.14);
  Experiment baseline{cfg};
  cfg.scheme = Scheme::kRackSched;
  Experiment racksched{cfg};
  const auto rb = baseline.run();
  const auto rr = racksched.run();
  EXPECT_LT(rr.p99.us(), rb.p99.us());
}

TEST(ExperimentEdge, ServerRemovalMidRun) {
  ClusterConfig cfg = base_cfg(Scheme::kNetClone);
  cfg.server_workers = {4, 4, 4, 4};
  cfg.warmup = SimTime::zero();
  cfg.measure = SimTime::milliseconds(10);
  cfg.offered_rps =
      0.4 * cluster_capacity_rps(cfg.server_workers, 25.0 * 1.14);
  Experiment experiment{cfg};
  experiment.scheduler().schedule_at(
      SimTime::milliseconds(5),
      [&experiment] { experiment.remove_server(ServerId{1}); });
  const ExperimentResult result = experiment.run();

  // The drained server stopped receiving shortly after removal; the
  // survivors carried the load.
  const auto& servers = experiment.servers();
  EXPECT_LT(servers[1]->stats().completed,
            servers[0]->stats().completed / 2 * 3);
  EXPECT_GT(servers[0]->stats().completed, 0U);
  // Losses are limited to requests in flight with stale group ids.
  std::uint64_t completed = 0;
  for (const host::Client* client : experiment.clients()) {
    completed += client->stats().completed;
  }
  EXPECT_GE(completed + 50, result.requests_sent);
  EXPECT_GT(result.cloned_requests, 0U);
}

TEST(ExperimentEdge, RemoveServerRequiresNetCloneScheme) {
  Experiment experiment{base_cfg(Scheme::kBaseline)};
  EXPECT_THROW(experiment.remove_server(ServerId{0}), CheckFailure);
}

TEST(ExperimentEdge, LatencyDecompositionIsConsistent) {
  // Server-reported wait + service must sit inside the end-to-end
  // latency, and at mid load the mean decomposition should account for
  // most of it (the rest is the fixed network/processing path).
  ClusterConfig cfg = base_cfg(Scheme::kBaseline);
  cfg.offered_rps =
      0.6 * cluster_capacity_rps(cfg.server_workers, 25.0 * 1.14);
  Experiment experiment{cfg};
  const ExperimentResult result = experiment.run();
  EXPECT_GT(result.server_service_p99.ns(), 0);
  EXPECT_LE(result.server_service_p99, result.p99);
  EXPECT_LE(result.server_wait_p99, result.p99);
  const host::ClientStats& cs = experiment.clients()[0]->stats();
  EXPECT_EQ(cs.server_service.count(), cs.latency.count());
  const double fixed_path_us =
      cs.latency.mean_ns() / 1e3 - cs.server_queue_wait.mean_ns() / 1e3 -
      cs.server_service.mean_ns() / 1e3;
  EXPECT_GT(fixed_path_us, 2.0);   // links + switch + host threads
  EXPECT_LT(fixed_path_us, 10.0);  // ...and nothing unaccounted for
}

TEST(ExperimentEdge, CloningMasksServiceJitterDespiteExtraLoad) {
  // The decomposition explains *how* NetClone wins at mid load: executed
  // clones raise the effective server load, so the accepted responses
  // actually report MORE queueing than the baseline — yet the end-to-end
  // tail is better because taking the faster of two executions masks the
  // 15x jitter in the service component.
  ClusterConfig cfg = base_cfg(Scheme::kBaseline);
  cfg.server_workers = {8, 8, 8, 8};
  cfg.warmup = SimTime::milliseconds(2);
  cfg.measure = SimTime::milliseconds(12);
  cfg.offered_rps =
      0.5 * cluster_capacity_rps(cfg.server_workers, 25.0 * 1.14);
  Experiment baseline{cfg};
  cfg.scheme = Scheme::kNetClone;
  Experiment netclone{cfg};
  const auto rb = baseline.run();
  const auto rn = netclone.run();
  // Jitter masked: the accepted executions' service tail shrinks...
  EXPECT_LT(rn.server_service_p99.us(), 0.8 * rb.server_service_p99.us());
  // ...and dominates the wait increase from the cloning load:
  EXPECT_GE(rn.server_wait_p99.us(), rb.server_wait_p99.us());
  EXPECT_LE(rn.p99.us(), 1.05 * rb.p99.us());
}

TEST(ExperimentEdge, ZeroDrainStillProducesResults) {
  ClusterConfig cfg = base_cfg(Scheme::kBaseline);
  cfg.drain = SimTime::zero();
  Experiment experiment{cfg};
  const ExperimentResult result = experiment.run();
  EXPECT_GT(result.completed, 0U);
}

TEST(ExperimentEdge, OverloadDegradesGracefully) {
  // 120% offered: the system must saturate near capacity, not crash or
  // conserve (queues legitimately hold the excess at the end).
  ClusterConfig cfg = base_cfg(Scheme::kNetClone);
  const double capacity =
      cluster_capacity_rps(cfg.server_workers, 25.0 * 1.14);
  cfg.offered_rps = 1.2 * capacity;
  cfg.drain = SimTime::milliseconds(2);  // deliberately short
  Experiment experiment{cfg};
  const ExperimentResult result = experiment.run();
  EXPECT_GT(result.achieved_rps, 0.8 * capacity);
  EXPECT_LT(result.achieved_rps, 1.05 * capacity);
  EXPECT_GT(result.p99.us(), 200.0);  // deep queues
}

}  // namespace
}  // namespace netclone::harness
