// Cross-seed, cross-load property sweep of the end-to-end invariants in
// DESIGN.md §5: whatever the randomness, a NetClone cluster must conserve
// requests, account for every clone, and never leak unfiltered duplicates
// beyond the collision rate.
#include <gtest/gtest.h>

#include "harness/experiment.hpp"
#include "host/service.hpp"
#include "host/workload.hpp"

namespace netclone::harness {
namespace {

struct SweepCase {
  std::uint64_t seed;
  double load;
};

class InvariantSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(InvariantSweep, NetCloneAccountingHolds) {
  const SweepCase param = GetParam();
  ClusterConfig cfg;
  cfg.scheme = Scheme::kNetClone;
  cfg.server_workers = {8, 8, 8, 8};
  cfg.factory = std::make_shared<host::ExponentialWorkload>(25.0);
  cfg.service = std::make_shared<host::SyntheticService>(
      host::JitterModel{0.01, 15.0, 0.08});
  cfg.warmup = SimTime::milliseconds(2);
  cfg.measure = SimTime::milliseconds(8);
  cfg.seed = param.seed;
  cfg.offered_rps =
      param.load * cluster_capacity_rps(cfg.server_workers, 25.0 * 1.14);

  Experiment experiment{cfg};
  const ExperimentResult result = experiment.run();
  const auto& prog = experiment.netclone_program()->stats();

  std::uint64_t completed = 0;
  std::uint64_t redundant = 0;
  std::uint64_t unmatched = 0;
  for (const host::Client* client : experiment.clients()) {
    completed += client->stats().completed;
    redundant += client->stats().redundant_responses;
    unmatched += client->stats().unmatched_responses;
  }
  std::uint64_t stale = 0;
  std::uint64_t server_completed = 0;
  for (const host::Server* server : experiment.servers()) {
    stale += server->stats().dropped_stale_clones;
    server_completed += server->stats().completed;
  }

  // 1. Conservation: every request completes exactly once (drain covers
  //    the tail at these sub-saturation loads).
  EXPECT_EQ(completed, result.requests_sent) << "seed=" << param.seed;
  EXPECT_EQ(unmatched, 0U);

  // 2. Clone accounting: each cloned request's duplicate was filtered at
  //    the switch, dropped at a busy server, or reached the client as a
  //    redundant response.
  EXPECT_EQ(prog.cloned_requests,
            prog.filtered_responses + stale + redundant)
      << "seed=" << param.seed;

  // 3. One recirculation per clone, no parse errors, no stray drops.
  EXPECT_EQ(prog.recirculated_clones, prog.cloned_requests);
  EXPECT_EQ(result.switch_stats.parse_errors, 0U);
  EXPECT_EQ(prog.missing_route_drops, 0U);

  // 4. Server executions = originals + executed clones.
  EXPECT_EQ(server_completed,
            result.requests_sent + prog.cloned_requests - stale);

  // 5. Filter-miss leakage stays at the collision level (two 2^17-slot
  //    tables, microsecond slot lifetimes: far below 1%).
  EXPECT_LE(static_cast<double>(redundant),
            0.01 * static_cast<double>(prog.cloned_requests) + 2.0);
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndLoads, InvariantSweep,
    ::testing::Values(SweepCase{1, 0.2}, SweepCase{2, 0.2},
                      SweepCase{3, 0.5}, SweepCase{4, 0.5},
                      SweepCase{5, 0.7}, SweepCase{6, 0.7},
                      SweepCase{7, 0.35}, SweepCase{8, 0.6},
                      SweepCase{9, 0.45}, SweepCase{10, 0.25}),
    [](const ::testing::TestParamInfo<SweepCase>& param_info) {
      return "seed" + std::to_string(param_info.param.seed) + "_load" +
             std::to_string(static_cast<int>(param_info.param.load * 100));
    });

}  // namespace
}  // namespace netclone::harness
