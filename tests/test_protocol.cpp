// §3.7 "Protocol support": Lamport-style request ids and TCP-mode
// retransmission. A retransmitted request must receive the SAME request id
// so the filter tables keep working, and lost packets (here: a switch
// outage) must be recovered by the client timeout.
#include <gtest/gtest.h>

#include "core/netclone_program.hpp"
#include "harness/experiment.hpp"
#include "kv/kv_workload.hpp"
#include "host/service.hpp"
#include "host/workload.hpp"
#include "test_util.hpp"

namespace netclone {
namespace {

using core::NetCloneProgram;
using netclone::testing::make_request;
using netclone::testing::run_ingress;

TEST(ClientTupleMode, RetransmissionKeepsRequestId) {
  pisa::Pipeline pipeline;
  core::NetCloneConfig cfg;
  cfg.id_mode = core::RequestIdMode::kClientTuple;
  NetCloneProgram program{pipeline, cfg};
  program.add_server(ServerId{0}, host::server_ip(ServerId{0}), 10, 1);
  program.add_server(ServerId{1}, host::server_ip(ServerId{1}), 11, 2);
  program.install_groups(core::build_group_pairs(2));

  wire::Packet first = make_request(3, 42, 0, 0);
  wire::Packet retransmit = make_request(3, 42, 0, 0);
  (void)run_ingress(program, pipeline, first);
  (void)run_ingress(program, pipeline, retransmit);
  EXPECT_EQ(first.nc().req_id, retransmit.nc().req_id);

  // In sequence mode the ids would differ — the §3.7 misbehavior.
  pisa::Pipeline pipeline2;
  core::NetCloneConfig seq_cfg;
  NetCloneProgram seq_program{pipeline2, seq_cfg};
  seq_program.add_server(ServerId{0}, host::server_ip(ServerId{0}), 10, 1);
  seq_program.add_server(ServerId{1}, host::server_ip(ServerId{1}), 11, 2);
  seq_program.install_groups(core::build_group_pairs(2));
  wire::Packet a = make_request(3, 42, 0, 0);
  wire::Packet b = make_request(3, 42, 0, 0);
  (void)run_ingress(seq_program, pipeline2, a);
  (void)run_ingress(seq_program, pipeline2, b);
  EXPECT_NE(a.nc().req_id, b.nc().req_id);
}

TEST(ClientTupleMode, SequenceRegisterUntouched) {
  pisa::Pipeline pipeline;
  core::NetCloneConfig cfg;
  cfg.id_mode = core::RequestIdMode::kClientTuple;
  NetCloneProgram program{pipeline, cfg};
  program.add_server(ServerId{0}, host::server_ip(ServerId{0}), 10, 1);
  program.add_server(ServerId{1}, host::server_ip(ServerId{1}), 11, 2);
  program.install_groups(core::build_group_pairs(2));
  for (std::uint32_t i = 1; i <= 10; ++i) {
    wire::Packet pkt = make_request(0, i, 0, 0);
    (void)run_ingress(program, pipeline, pkt);
    EXPECT_NE(pkt.nc().req_id, 0U);
  }
}

harness::ClusterConfig retransmit_cluster() {
  harness::ClusterConfig cfg;
  cfg.scheme = harness::Scheme::kNetClone;
  cfg.server_workers = {8, 8, 8, 8};
  cfg.factory = std::make_shared<host::ExponentialWorkload>(25.0);
  cfg.service =
      std::make_shared<host::SyntheticService>(host::JitterModel{0.01, 15});
  cfg.netclone.id_mode = core::RequestIdMode::kClientTuple;
  cfg.client_template.retransmit_timeout = SimTime::milliseconds(1);
  cfg.client_template.max_retransmits = 10;
  cfg.warmup = SimTime::zero();
  cfg.measure = SimTime::milliseconds(20);
  cfg.drain = SimTime::milliseconds(20);
  const double capacity =
      harness::cluster_capacity_rps(cfg.server_workers, 25.0 * 1.14);
  cfg.offered_rps = 0.2 * capacity;
  return cfg;
}

TEST(Retransmission, RecoversRequestsLostInSwitchOutage) {
  // Without retransmission, a 3 ms outage loses ~3 ms x offered requests
  // forever. With TCP-mode timeouts every request eventually completes.
  harness::Experiment experiment{retransmit_cluster()};
  experiment.scheduler().schedule_at(SimTime::milliseconds(5),
                                     [&] { experiment.tor().fail(); });
  experiment.scheduler().schedule_at(SimTime::milliseconds(8),
                                     [&] { experiment.tor().recover(); });
  (void)experiment.run();

  std::uint64_t sent = 0;
  std::uint64_t completed = 0;
  std::uint64_t retransmissions = 0;
  for (const host::Client* client : experiment.clients()) {
    sent += client->stats().requests_sent;
    completed += client->stats().completed;
    retransmissions += client->stats().retransmissions;
  }
  EXPECT_GT(retransmissions, 50U);  // the outage forced re-sends
  EXPECT_EQ(completed, sent);       // nothing lost permanently
}

TEST(Retransmission, NoOutageMeansNoRetransmissions) {
  harness::ClusterConfig cfg = retransmit_cluster();
  cfg.client_template.retransmit_timeout = SimTime::milliseconds(5);
  harness::Experiment experiment{cfg};
  (void)experiment.run();
  std::uint64_t retransmissions = 0;
  for (const host::Client* client : experiment.clients()) {
    retransmissions += client->stats().retransmissions;
  }
  EXPECT_EQ(retransmissions, 0U);  // all latencies are well under 5 ms
}

TEST(WriteRequests, NeverClonedEndToEnd) {
  pisa::Pipeline pipeline;
  core::NetCloneConfig cfg;
  NetCloneProgram program{pipeline, cfg};
  program.add_server(ServerId{0}, host::server_ip(ServerId{0}), 10, 1);
  program.add_server(ServerId{1}, host::server_ip(ServerId{1}), 11, 2);
  program.install_groups(core::build_group_pairs(2));

  // Both servers idle: a read would clone, a write must not.
  wire::Packet write = make_request(0, 1, 0, 0);
  write.nc().type = wire::MsgType::kWriteRequest;
  const auto md = run_ingress(program, pipeline, write);
  EXPECT_FALSE(md.drop);
  EXPECT_FALSE(md.multicast_group.has_value());
  EXPECT_EQ(md.egress_port, 10U);
  EXPECT_EQ(program.stats().write_requests, 1U);
  EXPECT_EQ(program.stats().cloned_requests, 0U);

  wire::Packet read = make_request(0, 2, 0, 0);
  const auto md2 = run_ingress(program, pipeline, read);
  EXPECT_TRUE(md2.multicast_group.has_value());
}

TEST(WriteRequests, KvMixWithWritesEndToEnd) {
  auto store = std::make_shared<kv::KvStore>(10000);
  kv::populate(*store, 10000);
  kv::KvMix mix;
  mix.get_fraction = 0.85;
  mix.set_fraction = 0.10;  // the rest are SCANs
  mix.num_keys = 10000;
  const kv::KvCostProfile profile = kv::redis_profile();
  auto factory = std::make_shared<kv::KvRequestFactory>(mix, profile);

  harness::ClusterConfig cfg;
  cfg.scheme = harness::Scheme::kNetClone;
  cfg.server_workers = {8, 8, 8, 8};
  cfg.factory = factory;
  cfg.service = std::make_shared<kv::KvService>(store, profile,
                                                host::JitterModel{0.01, 15});
  cfg.warmup = SimTime::milliseconds(2);
  cfg.measure = SimTime::milliseconds(10);
  cfg.offered_rps = 0.3 * harness::cluster_capacity_rps(
                              cfg.server_workers,
                              factory->mean_intrinsic_us() * 1.14);
  harness::Experiment experiment{cfg};
  const harness::ExperimentResult result = experiment.run();

  const auto& ps = experiment.netclone_program()->stats();
  EXPECT_GT(ps.write_requests, 0U);
  EXPECT_GT(ps.cloned_requests, 0U);  // reads still clone
  // Writes + reads are mutually exclusive counters.
  EXPECT_EQ(ps.requests + ps.write_requests, result.requests_sent);

  std::uint64_t completed = 0;
  for (const host::Client* client : experiment.clients()) {
    completed += client->stats().completed;
  }
  EXPECT_EQ(completed, result.requests_sent);  // writes complete too
}

}  // namespace
}  // namespace netclone
