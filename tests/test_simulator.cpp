#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

namespace netclone::sim {
namespace {

using namespace netclone::literals;

TEST(Simulator, StartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), SimTime::zero());
  EXPECT_EQ(sim.pending_events(), 0U);
}

TEST(Simulator, ExecutesInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(30_ns, [&] { order.push_back(3); });
  sim.schedule_at(10_ns, [&] { order.push_back(1); });
  sim.schedule_at(20_ns, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30_ns);
}

TEST(Simulator, TiesBreakInSchedulingOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(5_ns, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  }
}

TEST(Simulator, ScheduleAfterUsesCurrentTime) {
  Simulator sim;
  SimTime fired = SimTime::zero();
  sim.schedule_at(10_ns, [&] {
    sim.schedule_after(5_ns, [&] { fired = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(fired, 15_ns);
}

TEST(Simulator, SchedulingInPastThrows) {
  Simulator sim;
  sim.schedule_at(10_ns, [&] {
    EXPECT_THROW((void)sim.schedule_at(5_ns, [] {}), CheckFailure);
    EXPECT_THROW((void)sim.schedule_after(SimTime::nanoseconds(-1), [] {}),
                 CheckFailure);
  });
  sim.run();
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.schedule_at(10_ns, [&] { fired = true; });
  sim.cancel(id);
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, CancelAfterFireIsHarmless) {
  Simulator sim;
  const EventId id = sim.schedule_at(1_ns, [] {});
  sim.run();
  sim.cancel(id);  // must not crash or corrupt
  sim.schedule_at(2_ns, [] {});
  sim.run();
  EXPECT_EQ(sim.executed_events(), 2U);
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(10_ns, [&] { ++fired; });
  sim.schedule_at(20_ns, [&] { ++fired; });
  sim.schedule_at(30_ns, [&] { ++fired; });
  sim.run_until(20_ns);  // inclusive boundary
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.now(), 20_ns);
  EXPECT_EQ(sim.pending_events(), 1U);
  sim.run_until(100_ns);
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(sim.now(), 100_ns);  // clock advances to the deadline
}

TEST(Simulator, RunUntilWithEmptyQueueAdvancesClock) {
  Simulator sim;
  sim.run_until(42_ns);
  EXPECT_EQ(sim.now(), 42_ns);
}

TEST(Simulator, StopInterruptsRun) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(1_ns, [&] {
    ++fired;
    sim.stop();
  });
  sim.schedule_at(2_ns, [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 1);
  sim.run();  // resumes with remaining events
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, StepExecutesExactlyOne) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(1_ns, [&] { ++fired; });
  sim.schedule_at(2_ns, [&] { ++fired; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(fired, 2);
  EXPECT_FALSE(sim.step());
}

TEST(Simulator, EventsCanScheduleMoreEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 100) {
      sim.schedule_after(1_ns, chain);
    }
  };
  sim.schedule_at(0_ns, chain);
  sim.run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(sim.now(), 99_ns);
}

TEST(Simulator, PendingEventsTracksCancellations) {
  Simulator sim;
  const EventId a = sim.schedule_at(1_ns, [] {});
  sim.schedule_at(2_ns, [] {});
  EXPECT_EQ(sim.pending_events(), 2U);
  sim.cancel(a);
  EXPECT_EQ(sim.pending_events(), 1U);
}

TEST(Simulator, PendingEventsIsExactAcrossTheEventLifecycle) {
  Simulator sim;
  int fired = 0;
  const EventId a = sim.schedule_at(1_ns, [&] { ++fired; });
  const EventId b = sim.schedule_at(2_ns, [&] { ++fired; });
  sim.schedule_at(3_ns, [&] { ++fired; });
  EXPECT_EQ(sim.pending_events(), 3U);

  sim.cancel(b);  // cancellation is removal, not deferred bookkeeping
  EXPECT_EQ(sim.pending_events(), 2U);

  EXPECT_TRUE(sim.step());  // fires a
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.pending_events(), 1U);

  sim.cancel(b);  // re-cancelling the cancelled event: no change
  EXPECT_EQ(sim.pending_events(), 1U);
  sim.cancel(a);  // cancelling the fired event: no change
  EXPECT_EQ(sim.pending_events(), 1U);

  sim.run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.pending_events(), 0U);
}

TEST(Simulator, StaleIdCannotCancelAnEventReusingItsStorage) {
  Simulator sim;
  bool a_fired = false;
  bool b_fired = false;
  const EventId a = sim.schedule_at(10_ns, [&] { a_fired = true; });
  sim.cancel(a);
  // b is free to reuse a's storage; a's handle must stay inert.
  sim.schedule_at(10_ns, [&] { b_fired = true; });
  sim.cancel(a);
  sim.run();
  EXPECT_FALSE(a_fired);
  EXPECT_TRUE(b_fired);
}

TEST(Simulator, CancelFromWithinACallback) {
  Simulator sim;
  bool fired = false;
  const EventId doomed = sim.schedule_at(2_ns, [&] { fired = true; });
  sim.schedule_at(1_ns, [&] { sim.cancel(doomed); });
  sim.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.executed_events(), 1U);
}

TEST(Simulator, CancelDestroysTheCallbackImmediately) {
  Simulator sim;
  auto token = std::make_shared<int>(7);
  const EventId id = sim.schedule_at(10_ns, [token] { (void)*token; });
  EXPECT_EQ(token.use_count(), 2);
  sim.cancel(id);
  // The capture is released at cancel time, not when the queue drains.
  EXPECT_EQ(token.use_count(), 1);
}

TEST(Simulator, OversizedCapturesFallBackToTheHeap) {
  Simulator sim;
  std::array<std::uint64_t, 32> big{};  // 256 bytes, past inline capacity
  big.back() = 42;
  std::uint64_t seen = 0;
  sim.schedule_at(1_ns, [big, &seen] { seen = big.back(); });
  sim.run();
  EXPECT_EQ(seen, 42U);
}

TEST(Simulator, MoveOnlyCapturesAreSupported) {
  // std::function cannot hold this; EventCallback must.
  Simulator sim;
  auto payload = std::make_unique<int>(9);
  int seen = 0;
  sim.schedule_at(1_ns,
                  [p = std::move(payload), &seen] { seen = *p; });
  sim.run();
  EXPECT_EQ(seen, 9);
}

TEST(Simulator, DefaultEventIdIsInvalidAndHarmless) {
  Simulator sim;
  EXPECT_FALSE(EventId{}.valid());
  sim.cancel(EventId{});  // no-op
  bool fired = false;
  const EventId id = sim.schedule_at(1_ns, [&] { fired = true; });
  EXPECT_TRUE(id.valid());
  sim.run();
  EXPECT_TRUE(fired);
}

TEST(Simulator, DeterministicAcrossRuns) {
  // Two identical schedules must execute identically (same order ids).
  auto run_once = [] {
    Simulator sim;
    std::vector<int> order;
    for (int i = 0; i < 50; ++i) {
      sim.schedule_at(SimTime::nanoseconds((i * 7) % 13),
                      [&order, i] { order.push_back(i); });
    }
    sim.run();
    return order;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace netclone::sim
