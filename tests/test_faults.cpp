// Fault-injection subsystem: plan parsing, scenario wiring, checksum
// verification on the receive path, retransmit backoff, fault application
// through Experiment, and a quick chaos sweep (the >=100-combo sweep
// lives in test_chaos_sweep.cpp, slow lane).
#include "harness/faults.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "chaos_util.hpp"
#include "common/check.hpp"
#include "harness/experiment.hpp"
#include "harness/invariants.hpp"
#include "harness/scenario.hpp"
#include "test_util.hpp"
#include "wire/frame.hpp"

namespace netclone {
namespace {

using harness::FaultAction;
using harness::FaultEvent;
using harness::FaultPlanError;
using harness::parse_fault_entry;
using netclone::testing::make_request;

// ---------------------------------------------------------------------------
// Fault-plan parsing

TEST(FaultPlanParse, LinkDownEntry) {
  const FaultEvent ev = parse_fault_entry("at=2s link_down sw0-s3");
  EXPECT_EQ(ev.at, SimTime::seconds(2.0));
  EXPECT_EQ(ev.action, FaultAction::kLinkDown);
  EXPECT_EQ(ev.target, "sw0-s3");
}

TEST(FaultPlanParse, RateEntryWithScientificNotation) {
  const FaultEvent ev = parse_fault_entry("at=3s corrupt_rate sw0-s1 1e-4");
  EXPECT_EQ(ev.at, SimTime::seconds(3.0));
  EXPECT_EQ(ev.action, FaultAction::kCorruptRate);
  EXPECT_EQ(ev.target, "sw0-s1");
  EXPECT_DOUBLE_EQ(ev.value, 1e-4);
}

TEST(FaultPlanParse, TimeUnits) {
  EXPECT_EQ(parse_fault_entry("at=1500ns switch_wipe sw0").at,
            SimTime::nanoseconds(1500));
  EXPECT_EQ(parse_fault_entry("at=250us switch_wipe sw0").at,
            SimTime::microseconds(250.0));
  EXPECT_EQ(parse_fault_entry("at=3.5ms switch_wipe sw0").at,
            SimTime::milliseconds(3.5));
  EXPECT_EQ(parse_fault_entry("at=2.5s switch_wipe sw0").at,
            SimTime::seconds(2.5));
}

TEST(FaultPlanParse, FilterStaleEntry) {
  const FaultEvent ev = parse_fault_entry("at=5ms filter_stale sw0 1 12345");
  EXPECT_EQ(ev.action, FaultAction::kFilterStale);
  EXPECT_EQ(ev.table, 1U);
  EXPECT_DOUBLE_EQ(ev.value, 12345.0);
}

TEST(FaultPlanParse, ServerActions) {
  EXPECT_EQ(parse_fault_entry("at=1ms server_crash s2").action,
            FaultAction::kServerCrash);
  EXPECT_EQ(parse_fault_entry("at=1ms server_restart s2").action,
            FaultAction::kServerRestart);
  EXPECT_EQ(parse_fault_entry("at=1ms server_pause s0").action,
            FaultAction::kServerPause);
  EXPECT_EQ(parse_fault_entry("at=1ms server_resume s0").action,
            FaultAction::kServerResume);
  const FaultEvent slow = parse_fault_entry("at=1ms server_slowdown s1 4");
  EXPECT_EQ(slow.action, FaultAction::kServerSlowdown);
  EXPECT_DOUBLE_EQ(slow.value, 4.0);
}

TEST(FaultPlanParse, Rejections) {
  EXPECT_THROW((void)parse_fault_entry(""), FaultPlanError);
  EXPECT_THROW((void)parse_fault_entry("link_down sw0-s3"), FaultPlanError);
  EXPECT_THROW((void)parse_fault_entry("at=2x link_down sw0-s3"),
               FaultPlanError);
  EXPECT_THROW((void)parse_fault_entry("at=s link_down sw0-s3"),
               FaultPlanError);
  EXPECT_THROW((void)parse_fault_entry("at=-2s link_down sw0-s3"),
               FaultPlanError);
  EXPECT_THROW((void)parse_fault_entry("at=2s melt_down sw0-s3"),
               FaultPlanError);
  EXPECT_THROW((void)parse_fault_entry("at=2s link_down"), FaultPlanError);
  EXPECT_THROW((void)parse_fault_entry("at=2s link_down sw0-s3 0.5"),
               FaultPlanError);
  EXPECT_THROW((void)parse_fault_entry("at=2s drop_rate sw0-s3"),
               FaultPlanError);
  EXPECT_THROW((void)parse_fault_entry("at=2s drop_rate sw0-s3 -0.1"),
               FaultPlanError);
  EXPECT_THROW((void)parse_fault_entry("at=2s server_slowdown s1 0"),
               FaultPlanError);
  EXPECT_THROW((void)parse_fault_entry("at=2s filter_stale sw0 0 0"),
               FaultPlanError);
}

TEST(FaultPlanParse, ActionNamesRoundTrip) {
  for (const FaultAction action :
       {FaultAction::kLinkDown, FaultAction::kDropRate,
        FaultAction::kServerCrash, FaultAction::kSwitchWipe,
        FaultAction::kFilterStale, FaultAction::kAggFail,
        FaultAction::kAggRejoin, FaultAction::kRackDown,
        FaultAction::kRackUp}) {
    const std::string name = harness::fault_action_name(action);
    EXPECT_NE(name, "?");
  }
}

TEST(FaultPlanParse, FatTreeActions) {
  EXPECT_EQ(parse_fault_entry("at=2ms agg_fail agg1").action,
            FaultAction::kAggFail);
  EXPECT_EQ(parse_fault_entry("at=3ms agg_rejoin agg1").action,
            FaultAction::kAggRejoin);
  EXPECT_EQ(parse_fault_entry("at=1ms rack_down rack0").action,
            FaultAction::kRackDown);
  EXPECT_EQ(parse_fault_entry("at=2ms rack_up rack0").action,
            FaultAction::kRackUp);
  EXPECT_EQ(parse_fault_entry("at=2ms agg_fail agg12").target, "agg12");
}

TEST(FaultPlanParse, FatTreeTargetRejections) {
  // Indexed targets are validated at parse time so a typo names the key
  // instead of exploding at fire time.
  EXPECT_THROW((void)parse_fault_entry("at=2ms agg_fail s0"),
               FaultPlanError);
  EXPECT_THROW((void)parse_fault_entry("at=2ms agg_fail agg"),
               FaultPlanError);
  EXPECT_THROW((void)parse_fault_entry("at=2ms agg_fail aggX"),
               FaultPlanError);
  EXPECT_THROW((void)parse_fault_entry("at=2ms agg_rejoin rack1"),
               FaultPlanError);
  EXPECT_THROW((void)parse_fault_entry("at=2ms rack_down agg0"),
               FaultPlanError);
  EXPECT_THROW((void)parse_fault_entry("at=2ms rack_down rack0x"),
               FaultPlanError);
  EXPECT_THROW((void)parse_fault_entry("at=2ms agg_fail agg0 0.5"),
               FaultPlanError);
}

// ---------------------------------------------------------------------------
// Multi-line plan parsing: file/line/key diagnostics

TEST(FaultPlanParse, MultiLinePlanWithCommentsAndBlanks) {
  const harness::FaultPlan plan = harness::parse_fault_plan(
      "# cluster-wide fault plan\n"
      "\n"
      "at=2ms agg_fail agg1      # kill the middle replica\n"
      "  at=3500us agg_rejoin agg1\n"
      "at=4ms rack_down rack0\n");
  ASSERT_EQ(plan.events.size(), 3U);
  EXPECT_EQ(plan.events[0].action, FaultAction::kAggFail);
  EXPECT_EQ(plan.events[0].target, "agg1");
  EXPECT_EQ(plan.events[1].at, SimTime::microseconds(3500.0));
  EXPECT_EQ(plan.events[2].action, FaultAction::kRackDown);
}

TEST(FaultPlanParse, PlanErrorCarriesLineNumber) {
  try {
    (void)harness::parse_fault_plan(
        "at=1ms server_crash s0\n"
        "# fine so far\n"
        "at=2ms melt_down agg0\n");
    FAIL() << "expected FaultPlanError";
  } catch (const FaultPlanError& err) {
    const std::string what = err.what();
    EXPECT_NE(what.find("line 3"), std::string::npos) << what;
    EXPECT_NE(what.find("melt_down"), std::string::npos) << what;
  }
}

TEST(FaultPlanParse, PlanErrorCarriesSourceName) {
  try {
    (void)harness::parse_fault_plan("at=2ms agg_fail bogus\n", "plan.cfg");
    FAIL() << "expected FaultPlanError";
  } catch (const FaultPlanError& err) {
    const std::string what = err.what();
    EXPECT_NE(what.find("plan.cfg: line 1:"), std::string::npos) << what;
    EXPECT_NE(what.find("agg_fail"), std::string::npos) << what;
    EXPECT_NE(what.find("bogus"), std::string::npos) << what;
  }
}

// ---------------------------------------------------------------------------
// Scenario wiring

TEST(ScenarioFaults, RepeatableFaultKey) {
  const harness::Scenario scenario = harness::parse_scenario(
      "servers = 4\n"
      "fault = at=2s link_down sw0-s3\n"
      "fault = at=2.5s link_up sw0-s3   # recovery\n"
      "fault = at=3s corrupt_rate sw0-s1 1e-4\n");
  ASSERT_EQ(scenario.faults.events.size(), 3U);
  EXPECT_EQ(scenario.faults.events[0].action, FaultAction::kLinkDown);
  EXPECT_EQ(scenario.faults.events[1].action, FaultAction::kLinkUp);
  EXPECT_EQ(scenario.faults.events[2].action, FaultAction::kCorruptRate);
  const harness::ClusterConfig cfg = scenario.build_config();
  EXPECT_EQ(cfg.faults.events.size(), 3U);
}

TEST(ScenarioFaults, BadFaultLineReportsLineNumber) {
  try {
    (void)harness::parse_scenario("servers = 4\nfault = at=2s nonsense x\n");
    FAIL() << "expected ScenarioError";
  } catch (const harness::ScenarioError& err) {
    EXPECT_NE(std::string{err.what()}.find("line 2"), std::string::npos);
  }
}

TEST(ScenarioFaults, DefaultTextStillParses) {
  EXPECT_NO_THROW((void)harness::parse_scenario(
      harness::default_scenario_text()));
}

// ---------------------------------------------------------------------------
// Receive-path checksum verification (satellite: hand-flipped byte)

wire::FrameHandle request_frame() {
  wire::Packet pkt = make_request(1, 7, 0, 0);
  return wire::FrameHandle{pkt.serialize()};
}

TEST(ChecksumVerify, AcceptsCleanFrame) {
  EXPECT_TRUE(wire::verify_frame_checksums(request_frame()));
}

TEST(ChecksumVerify, RejectsFlippedPayloadByte) {
  const wire::Frame clean = request_frame().to_frame();
  // Flip one bit in every byte position past the Ethernet header; the
  // IPv4 or UDP checksum must catch each one.
  for (std::size_t off = 14; off < clean.size(); ++off) {
    wire::Frame bad = clean;
    bad[off] ^= std::byte{0x10};
    EXPECT_FALSE(wire::verify_frame_checksums(
        wire::FrameHandle::copy_of(bad)))
        << "flip at offset " << off << " was not detected";
  }
}

TEST(ChecksumVerify, RejectsFlippedByteInSplitFrame) {
  const wire::Frame clean = request_frame().to_frame();
  // Split at an odd boundary inside the UDP segment so verification has
  // to form the straddle word across the head/tail seam.
  for (const std::size_t boundary : {std::size_t{43}, std::size_t{63},
                                     std::size_t{64}}) {
    ASSERT_LT(boundary, clean.size());
    const auto head_span =
        std::span<const std::byte>{clean}.first(boundary);
    const auto tail_span =
        std::span<const std::byte>{clean}.subspan(boundary);
    const wire::FrameHandle split = wire::FrameHandle::compose(
        wire::FrameHandle::copy_of(head_span),
        wire::FrameHandle::copy_of(tail_span));
    ASSERT_TRUE(split.split());
    EXPECT_TRUE(wire::verify_frame_checksums(split))
        << "clean split at " << boundary << " rejected";

    wire::Frame bad = clean;
    bad[clean.size() - 1] ^= std::byte{0x01};  // last payload byte
    const wire::FrameHandle bad_split = wire::FrameHandle::compose(
        wire::FrameHandle::copy_of(
            std::span<const std::byte>{bad}.first(boundary)),
        wire::FrameHandle::copy_of(
            std::span<const std::byte>{bad}.subspan(boundary)));
    EXPECT_FALSE(wire::verify_frame_checksums(bad_split))
        << "split at " << boundary << " missed the flipped byte";
  }
}

TEST(ChecksumVerify, IgnoresNonIpAndNonUdpFrames) {
  // Too short for any checksum: accepted (nothing to verify).
  wire::Frame tiny(10, std::byte{0xAA});
  EXPECT_TRUE(wire::verify_frame_checksums(wire::FrameHandle::copy_of(tiny)));

  // Non-IPv4 EtherType: accepted untouched.
  wire::Frame arp = request_frame().to_frame();
  arp[12] = std::byte{0x08};
  arp[13] = std::byte{0x06};
  EXPECT_TRUE(wire::verify_frame_checksums(wire::FrameHandle::copy_of(arp)));
}

TEST(ChecksumVerify, ClientAndServerCountDrops) {
  // End to end: a corrupting link between client and switch makes the
  // receivers count checksum_drops instead of mis-parsing garbage.
  harness::ClusterConfig cfg = netclone::testing::chaos_cluster(7);
  cfg.faults.events.push_back(
      parse_fault_entry("at=600us corrupt_rate sw0-c0 0.05"));
  cfg.faults.events.push_back(
      parse_fault_entry("at=600us corrupt_rate s0-sw0 0.05"));
  harness::Experiment exp{cfg};
  (void)exp.run();
  std::uint64_t drops = 0;
  for (const host::Client* client : exp.clients()) {
    drops += client->stats().checksum_drops;
  }
  const phys::Link* corrupted = exp.link("sw0-c0");
  ASSERT_NE(corrupted, nullptr);
  EXPECT_GT(corrupted->stats().corrupted_frames, 0U);
  EXPECT_GT(drops, 0U);
  const harness::InvariantReport report = harness::audit_invariants(exp);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

// ---------------------------------------------------------------------------
// Retransmit backoff (satellite: gaps grow and stay deterministic)

harness::ClusterConfig backoff_cluster() {
  harness::ClusterConfig cfg = netclone::testing::chaos_cluster(42);
  // One closed-loop client with a single-request window: with the switch
  // down from t=0, the retransmit timeline belongs to exactly one request.
  cfg.num_clients = 1;
  cfg.client_template.loop = host::LoopMode::kClosedLoop;
  cfg.client_template.closed_loop_window = 1;
  cfg.client_template.retransmit_timeout = SimTime::microseconds(100.0);
  cfg.client_template.max_retransmits = 8;
  cfg.client_template.retransmit_backoff = 2.0;
  cfg.client_template.retransmit_cap = SimTime::zero();  // uncapped
  cfg.client_template.retransmit_jitter = 0.1;
  cfg.warmup = SimTime::zero();
  cfg.measure = SimTime::milliseconds(40);
  cfg.drain = SimTime::milliseconds(20);
  cfg.faults.events.push_back(parse_fault_entry("at=0s switch_fail sw0"));
  return cfg;
}

std::vector<SimTime> retransmit_times(const harness::ClusterConfig& cfg) {
  harness::Experiment exp{cfg};
  (void)exp.run();
  return exp.clients()[0]->stats().retransmit_times;
}

TEST(RetransmitBackoff, GapsGrowExponentially) {
  const std::vector<SimTime> times = retransmit_times(backoff_cluster());
  ASSERT_EQ(times.size(), 8U);
  SimTime prev_gap = times[0];  // first gap is measured from t=0's send
  for (std::size_t i = 1; i < times.size(); ++i) {
    const SimTime gap = times[i] - times[i - 1];
    // backoff 2.0 with <= 10% jitter: every gap strictly exceeds the
    // previous one (2x growth dominates the jitter band).
    EXPECT_GT(gap, prev_gap) << "gap " << i << " did not grow";
    prev_gap = gap;
  }
  // The final gap is near timeout * 2^7 (within the jitter band).
  const double last_ns = static_cast<double>(
      (times[7] - times[6]).ns());
  EXPECT_GE(last_ns, 100e3 * 128.0);
  EXPECT_LE(last_ns, 100e3 * 128.0 * 1.1 + 1.0);
}

TEST(RetransmitBackoff, CapBoundsTheGaps) {
  harness::ClusterConfig cfg = backoff_cluster();
  cfg.client_template.retransmit_cap = SimTime::microseconds(300.0);
  const std::vector<SimTime> times = retransmit_times(cfg);
  ASSERT_EQ(times.size(), 8U);
  for (std::size_t i = 1; i < times.size(); ++i) {
    const double gap_ns =
        static_cast<double>((times[i] - times[i - 1]).ns());
    EXPECT_LE(gap_ns, 300e3 * 1.1 + 1.0) << "gap " << i << " exceeds cap";
  }
}

TEST(RetransmitBackoff, DeterministicAcrossRuns) {
  const harness::ClusterConfig cfg = backoff_cluster();
  EXPECT_EQ(retransmit_times(cfg), retransmit_times(cfg));
}

TEST(RetransmitBackoff, JitterDrawsDoNotShiftWorkload) {
  // Arming retransmission must not consume workload-RNG draws: a run
  // whose timeout never fires (it exceeds the horizon) produces the same
  // arrival/completion counts as one with the machinery disabled.
  harness::ClusterConfig with = netclone::testing::chaos_cluster(11);
  with.client_template.retransmit_timeout = SimTime::milliseconds(50);
  harness::ClusterConfig without = netclone::testing::chaos_cluster(11);
  without.client_template.retransmit_timeout = SimTime::zero();
  harness::Experiment e1{with};
  harness::Experiment e2{without};
  const harness::ExperimentResult r1 = e1.run();
  const harness::ExperimentResult r2 = e2.run();
  EXPECT_EQ(r1.requests_sent, r2.requests_sent);
  EXPECT_EQ(r1.completed, r2.completed);
}

// ---------------------------------------------------------------------------
// Fault application through Experiment

TEST(ExperimentFaults, LinkLookupByName) {
  harness::Experiment exp{netclone::testing::chaos_cluster(3)};
  EXPECT_NE(exp.link("c0-sw0"), nullptr);
  EXPECT_NE(exp.link("sw0-c1"), nullptr);
  EXPECT_NE(exp.link("s2-sw0"), nullptr);
  EXPECT_NE(exp.link("sw0-s0"), nullptr);
  EXPECT_EQ(exp.link("sw0-s9"), nullptr);
  EXPECT_EQ(exp.link("bogus"), nullptr);
  // 2 clients + 3 servers, two directed links each.
  EXPECT_EQ(exp.links().size(), 10U);
}

TEST(ExperimentFaults, ApplyLinkAndServerAndSwitchFaults) {
  harness::Experiment exp{netclone::testing::chaos_cluster(4)};

  exp.apply_fault(parse_fault_entry("at=0s link_down sw0-s1"));
  EXPECT_FALSE(exp.link("sw0-s1")->is_up());
  exp.apply_fault(parse_fault_entry("at=0s link_up sw0-s1"));
  EXPECT_TRUE(exp.link("sw0-s1")->is_up());

  exp.apply_fault(parse_fault_entry("at=0s drop_rate c0-sw0 0.25"));
  exp.apply_fault(parse_fault_entry("at=0s corrupt_rate c0-sw0 0.125"));
  const phys::LinkImpairments* cfg = exp.link("c0-sw0")->impairments();
  ASSERT_NE(cfg, nullptr);
  EXPECT_DOUBLE_EQ(cfg->drop_rate, 0.25);    // merged, not overwritten
  EXPECT_DOUBLE_EQ(cfg->corrupt_rate, 0.125);

  exp.apply_fault(parse_fault_entry("at=0s server_crash s0"));
  EXPECT_TRUE(exp.servers()[0]->crashed());
  exp.apply_fault(parse_fault_entry("at=0s server_restart s0"));
  EXPECT_FALSE(exp.servers()[0]->crashed());
  exp.apply_fault(parse_fault_entry("at=0s server_slowdown s1 3"));
  EXPECT_DOUBLE_EQ(exp.servers()[1]->slowdown(), 3.0);

  exp.apply_fault(parse_fault_entry("at=0s switch_wipe sw0"));
  EXPECT_EQ(exp.tor().stats().soft_state_wipes, 1U);
  exp.apply_fault(parse_fault_entry("at=0s filter_stale sw0 0 777"));
  ASSERT_NE(exp.netclone_program(), nullptr);
  EXPECT_EQ(exp.netclone_program()->stats().injected_stale_entries, 1U);

  EXPECT_THROW(
      exp.apply_fault(parse_fault_entry("at=0s link_down sw0-s9")),
      CheckFailure);
  EXPECT_THROW(
      exp.apply_fault(parse_fault_entry("at=0s server_crash s9")),
      CheckFailure);
}

TEST(ExperimentFaults, FilterStaleCausesFilteredResponseAbsorbedByRetry) {
  // Plant stale fingerprints for upcoming request ids: the first response
  // hashing there is wrongly filtered, and TCP-mode retransmission must
  // absorb the loss (requests still complete).
  harness::ClusterConfig cfg = netclone::testing::chaos_cluster(5);
  for (int t = 0; t < 2; ++t) {
    for (std::uint32_t id = 1; id <= 64; ++id) {
      harness::FaultEvent ev;
      ev.at = SimTime::microseconds(550.0);
      ev.action = FaultAction::kFilterStale;
      ev.target = "sw0";
      ev.table = static_cast<std::size_t>(t);
      ev.value = static_cast<double>(
          core::NetCloneProgram::client_tuple_id(t == 0 ? 0 : 1, id));
      cfg.faults.events.push_back(ev);
    }
  }
  harness::Experiment exp{cfg};
  (void)exp.run();
  EXPECT_EQ(exp.netclone_program()->stats().injected_stale_entries, 128U);
  const harness::InvariantReport report = harness::audit_invariants(exp);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(ExperimentFaults, ServerPauseBuffersAndReplays) {
  harness::ClusterConfig cfg = netclone::testing::chaos_cluster(6);
  cfg.faults.events.push_back(
      parse_fault_entry("at=800us server_pause s0"));
  cfg.faults.events.push_back(
      parse_fault_entry("at=1300us server_resume s0"));
  harness::Experiment exp{cfg};
  (void)exp.run();
  EXPECT_GT(exp.servers()[0]->stats().paused_frames, 0U);
  EXPECT_FALSE(exp.servers()[0]->paused());
  const harness::InvariantReport report = harness::audit_invariants(exp);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(ExperimentFaults, ServerCrashVoidsInFlightWork) {
  harness::ClusterConfig cfg = netclone::testing::chaos_cluster(8);
  cfg.faults.events.push_back(
      parse_fault_entry("at=1ms server_crash s1"));
  cfg.faults.events.push_back(
      parse_fault_entry("at=2ms server_restart s1"));
  harness::Experiment exp{cfg};
  (void)exp.run();
  const host::ServerStats& ss = exp.servers()[1]->stats();
  EXPECT_EQ(ss.crashes, 1U);
  EXPECT_GT(ss.abandoned_in_flight, 0U);
  const harness::InvariantReport report = harness::audit_invariants(exp);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

// ---------------------------------------------------------------------------
// Clean-run audits: the auditor holds on every scheme without faults

TEST(InvariantAuditor, CleanRunsPassOnEveryScheme) {
  for (const harness::Scheme scheme :
       {harness::Scheme::kBaseline, harness::Scheme::kCClone,
        harness::Scheme::kNetClone, harness::Scheme::kRackSched}) {
    harness::ClusterConfig cfg = netclone::testing::chaos_cluster(20);
    cfg.scheme = scheme;
    if (scheme != harness::Scheme::kNetClone) {
      cfg.netclone.id_mode = core::RequestIdMode::kSwitchSequence;
      cfg.client_template.retransmit_timeout = SimTime::zero();
    }
    harness::Experiment exp{cfg};
    (void)exp.run();
    const harness::InvariantReport report = harness::audit_invariants(exp);
    EXPECT_TRUE(report.ok())
        << harness::scheme_name(scheme) << ":\n"
        << report.to_string();
    EXPECT_NE(harness::chaos_digest(exp), 0U);
  }
}

// ---------------------------------------------------------------------------
// Quick chaos sweep (tier1); the full sweep is in test_chaos_sweep.cpp

TEST(ChaosSweepQuick, TwelveCombos) {
  for (std::uint64_t combo = 0; combo < 12; ++combo) {
    netclone::testing::run_chaos_combo(combo);
    if (HasFatalFailure()) {
      return;
    }
  }
}

}  // namespace
}  // namespace netclone
