#include "sim/simulator.hpp"
#include "host/server.hpp"

#include <gtest/gtest.h>

#include "phys/topology.hpp"
#include "test_util.hpp"

namespace netclone::host {
namespace {

using namespace netclone::literals;
using netclone::testing::CaptureNode;
using netclone::testing::make_request;

struct Rig {
  sim::Simulator sim;
  phys::Topology topo{sim};
  Server* server = nullptr;
  CaptureNode* wire_end = nullptr;

  explicit Rig(ServerParams params,
               JitterModel jitter = JitterModel{0.0, 15.0}) {
    server = &topo.add_node<Server>(
        sim, params, std::make_shared<SyntheticService>(jitter), Rng{42});
    wire_end = &topo.add_node<CaptureNode>("wire");
    topo.connect(*server, *wire_end);
  }

  void inject(wire::Packet pkt) {
    wire_end->transmit(0, pkt.serialize());
  }

  [[nodiscard]] std::vector<wire::Packet> responses() const {
    return wire_end->packets();
  }
};

ServerParams params_with(std::uint32_t workers) {
  ServerParams p;
  p.sid = ServerId{3};
  p.workers = workers;
  return p;
}

TEST(Server, RespondsToRequest) {
  Rig rig{params_with(4)};
  rig.inject(make_request(0, 1, 0, 0, /*intrinsic_ns=*/10000));
  rig.sim.run();
  const auto resp = rig.responses();
  ASSERT_EQ(resp.size(), 1U);
  EXPECT_TRUE(resp[0].nc().is_response());
  EXPECT_EQ(resp[0].nc().sid, 3);
  EXPECT_EQ(resp[0].nc().client_seq, 1U);
  EXPECT_EQ(resp[0].ip.src, server_ip(ServerId{3}));
  EXPECT_EQ(resp[0].ip.dst, client_ip(0));
  EXPECT_EQ(resp[0].udp.dst_port, 40000);
  EXPECT_EQ(rig.server->stats().completed, 1U);
}

TEST(Server, ExecutionTakesIntrinsicPlusOverheads) {
  ServerParams p = params_with(1);
  Rig rig{p};
  rig.inject(make_request(0, 1, 0, 0, 10000));
  rig.sim.run();
  // dispatch(300) + exec(10000) + tx(150) + 2 links with delay 850 + ser.
  const double total_us = rig.sim.now().us();
  EXPECT_GT(total_us, 12.0);
  EXPECT_LT(total_us, 13.0);
}

TEST(Server, ParallelWorkersOverlapExecution) {
  Rig rig{params_with(4)};
  for (std::uint32_t i = 1; i <= 4; ++i) {
    rig.inject(make_request(0, i, 0, 0, 100000));  // 100 us each
  }
  rig.sim.run();
  EXPECT_EQ(rig.responses().size(), 4U);
  // Four overlapping 100 us executions finish well before 400 us of
  // sequential time.
  EXPECT_LT(rig.sim.now().us(), 200.0);
}

TEST(Server, SingleWorkerSerializesFCFS) {
  Rig rig{params_with(1)};
  for (std::uint32_t i = 1; i <= 3; ++i) {
    rig.inject(make_request(0, i, 0, 0, 50000));
  }
  rig.sim.run();
  const auto resp = rig.responses();
  ASSERT_EQ(resp.size(), 3U);
  // FCFS: responses in arrival order.
  EXPECT_EQ(resp[0].nc().client_seq, 1U);
  EXPECT_EQ(resp[1].nc().client_seq, 2U);
  EXPECT_EQ(resp[2].nc().client_seq, 3U);
  EXPECT_GT(rig.sim.now().us(), 150.0);  // serialized executions
}

TEST(Server, PiggybacksQueueLengthInState) {
  Rig rig{params_with(1)};
  // Three requests at once: when the first completes, two are waiting.
  for (std::uint32_t i = 1; i <= 3; ++i) {
    rig.inject(make_request(0, i, 0, 0, 50000));
  }
  rig.sim.run();
  const auto resp = rig.responses();
  ASSERT_EQ(resp.size(), 3U);
  EXPECT_EQ(resp[0].nc().state, 2);  // two still queued
  EXPECT_EQ(resp[1].nc().state, 1);
  EXPECT_EQ(resp[2].nc().state, 0);
  EXPECT_EQ(rig.server->stats().responses_with_empty_queue, 1U);
  EXPECT_EQ(rig.server->stats().responses_total, 3U);
}

TEST(Server, DropsCloneWhenQueueNonEmpty) {
  Rig rig{params_with(1)};
  // Fill the worker and the queue with originals.
  rig.inject(make_request(0, 1, 0, 0, 50000));
  rig.inject(make_request(0, 2, 0, 0, 50000));
  // A cloned copy arrives while one request waits: must be dropped.
  wire::Packet clone = make_request(0, 3, 0, 0, 50000);
  clone.nc().clo = wire::CloneStatus::kClonedCopy;
  rig.inject(clone);
  rig.sim.run();
  EXPECT_EQ(rig.responses().size(), 2U);
  EXPECT_EQ(rig.server->stats().dropped_stale_clones, 1U);
}

TEST(Server, AcceptsCloneWhenQueueEmptyEvenIfWorkerBusy) {
  // Paper-literal admission (kQueueEmpty): a clone arriving while the
  // worker is busy but nothing queues is processed.
  Rig rig{params_with(1)};
  rig.inject(make_request(0, 1, 0, 0, 50000));
  wire::Packet clone = make_request(0, 2, 0, 0, 50000);
  clone.nc().clo = wire::CloneStatus::kClonedCopy;
  rig.inject(clone);
  rig.sim.run();
  EXPECT_EQ(rig.responses().size(), 2U);
  EXPECT_EQ(rig.server->stats().dropped_stale_clones, 0U);
}

TEST(Server, WorkerFreeAdmissionDropsQueuedClones) {
  ServerParams p = params_with(1);
  p.clone_admission = CloneAdmission::kWorkerFree;
  Rig rig{p};
  rig.inject(make_request(0, 1, 0, 0, 50000));
  wire::Packet clone = make_request(0, 2, 0, 0, 50000);
  clone.nc().clo = wire::CloneStatus::kClonedCopy;
  rig.inject(clone);
  rig.sim.run();
  EXPECT_EQ(rig.responses().size(), 1U);
  EXPECT_EQ(rig.server->stats().dropped_stale_clones, 1U);
}

TEST(Server, NeverDropsClonedOriginal) {
  Rig rig{params_with(1)};
  rig.inject(make_request(0, 1, 0, 0, 50000));
  rig.inject(make_request(0, 2, 0, 0, 50000));
  wire::Packet original = make_request(0, 3, 0, 0, 50000);
  original.nc().clo = wire::CloneStatus::kClonedOriginal;
  rig.inject(original);
  rig.sim.run();
  EXPECT_EQ(rig.responses().size(), 3U);
  EXPECT_EQ(rig.server->stats().dropped_stale_clones, 0U);
}

TEST(Server, DropDisabledAcceptsClonesAlways) {
  ServerParams p = params_with(1);
  p.drop_busy_clones = false;
  Rig rig{p};
  rig.inject(make_request(0, 1, 0, 0, 50000));
  rig.inject(make_request(0, 2, 0, 0, 50000));
  wire::Packet clone = make_request(0, 3, 0, 0, 50000);
  clone.nc().clo = wire::CloneStatus::kClonedCopy;
  rig.inject(clone);
  rig.sim.run();
  EXPECT_EQ(rig.responses().size(), 3U);
}

TEST(Server, ClonedResponsesEchoCloAndIdx) {
  Rig rig{params_with(1)};
  wire::Packet req = make_request(0, 1, 5, /*idx=*/1, 10000);
  req.nc().clo = wire::CloneStatus::kClonedOriginal;
  req.nc().req_id = 1234;
  rig.inject(req);
  rig.sim.run();
  const auto resp = rig.responses();
  ASSERT_EQ(resp.size(), 1U);
  EXPECT_EQ(resp[0].nc().clo, wire::CloneStatus::kClonedOriginal);
  EXPECT_EQ(resp[0].nc().idx, 1);
  EXPECT_EQ(resp[0].nc().req_id, 1234U);
}

TEST(Server, IgnoresResponsesAndGarbage) {
  Rig rig{params_with(1)};
  wire::Packet req = make_request(0, 1, 0, 0, 1000);
  wire::Packet resp = netclone::testing::make_response(ServerId{1}, 0, req);
  rig.inject(resp);
  rig.wire_end->transmit(0, wire::Frame(7, std::byte{1}));
  rig.sim.run();
  EXPECT_TRUE(rig.responses().empty());
  EXPECT_EQ(rig.server->stats().rx_requests, 0U);
}

TEST(Server, DispatcherSerializesArrivals) {
  ServerParams p = params_with(8);
  p.dispatch_cost = 1_us;
  Rig rig{p};
  for (std::uint32_t i = 1; i <= 4; ++i) {
    rig.inject(make_request(0, i, 0, 0, 0));
  }
  rig.sim.run();
  // 4 packets through a 1 us dispatcher: >= 4 us before the last response.
  EXPECT_GT(rig.sim.now().us(), 4.0);
  EXPECT_EQ(rig.responses().size(), 4U);
}

TEST(Server, TracksMaxQueueDepth) {
  Rig rig{params_with(1)};
  for (std::uint32_t i = 1; i <= 5; ++i) {
    rig.inject(make_request(0, i, 0, 0, 10000));
  }
  rig.sim.run();
  EXPECT_EQ(rig.server->stats().max_queue_depth, 4U);
}

TEST(Server, RejectsZeroWorkers) {
  sim::Simulator sim;
  ServerParams p;
  p.workers = 0;
  EXPECT_THROW((void)Server(sim, p, std::make_shared<SyntheticService>(
                                  JitterModel{}),
                      Rng{1}),
               CheckFailure);
}

}  // namespace
}  // namespace netclone::host
