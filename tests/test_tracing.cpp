#include "pisa/tracing.hpp"

#include <gtest/gtest.h>

#include "core/netclone_program.hpp"
#include "host/addressing.hpp"
#include "test_util.hpp"

namespace netclone::pisa {
namespace {

using netclone::testing::make_request;
using netclone::testing::make_response;
using netclone::testing::run_ingress;

struct Rig {
  Pipeline pipeline;
  std::shared_ptr<core::NetCloneProgram> inner;
  TracingProgram tracer;

  Rig()
      : inner(std::make_shared<core::NetCloneProgram>(
            pipeline, core::NetCloneConfig{})),
        tracer(inner, /*capacity=*/4) {
    inner->add_server(ServerId{0}, host::server_ip(ServerId{0}), 10, 1);
    inner->add_server(ServerId{1}, host::server_ip(ServerId{1}), 11, 2);
    inner->install_groups(core::build_group_pairs(2));
    inner->add_route(host::client_ip(0), 20);
    inner->add_route(host::client_ip(3), 23);
  }
};

TEST(Tracing, RecordsDecisions) {
  Rig rig;
  wire::Packet req = make_request(0, 7, 0, 0);
  (void)run_ingress(rig.tracer, rig.pipeline, req);  // clones -> MCAST

  wire::Packet resp = make_response(ServerId{0}, 0, req);
  (void)run_ingress(rig.tracer, rig.pipeline, resp);  // faster -> FWD

  wire::Packet dup = make_response(ServerId{1}, 0, req);
  (void)run_ingress(rig.tracer, rig.pipeline, dup);  // slower -> DROP

  ASSERT_EQ(rig.tracer.records().size(), 3U);
  const auto& records = rig.tracer.records();
  EXPECT_TRUE(records[0].is_request);
  EXPECT_TRUE(records[0].multicast);
  EXPECT_FALSE(records[1].is_request);
  EXPECT_FALSE(records[1].dropped);
  EXPECT_EQ(records[1].egress_port, 20U);
  EXPECT_TRUE(records[2].dropped);
  EXPECT_EQ(records[2].client_seq, 7U);
  EXPECT_EQ(records[0].req_id, records[2].req_id);
}

TEST(Tracing, RingIsBounded) {
  Rig rig;
  for (std::uint32_t i = 1; i <= 10; ++i) {
    wire::Packet req = make_request(0, i, 0, 0);
    (void)run_ingress(rig.tracer, rig.pipeline, req);
  }
  EXPECT_EQ(rig.tracer.records().size(), 4U);  // capacity
  EXPECT_EQ(rig.tracer.total_traced(), 10U);
  // The ring holds the most recent packets.
  EXPECT_EQ(rig.tracer.records().back().client_seq, 10U);
  EXPECT_EQ(rig.tracer.records().front().client_seq, 7U);
}

TEST(Tracing, InnerBehaviourUnchanged) {
  Rig traced;
  Rig plain;
  for (std::uint32_t i = 1; i <= 20; ++i) {
    wire::Packet a = make_request(0, i, 0, 0);
    wire::Packet b = make_request(0, i, 0, 0);
    const auto md_traced = run_ingress(traced.tracer, traced.pipeline, a);
    const auto md_plain = run_ingress(*plain.inner, plain.pipeline, b);
    EXPECT_EQ(md_traced.drop, md_plain.drop);
    EXPECT_EQ(md_traced.multicast_group, md_plain.multicast_group);
    EXPECT_EQ(a.nc().req_id, b.nc().req_id);
  }
}

TEST(Tracing, ToStringFormats) {
  Rig rig;
  wire::Packet req = make_request(3, 9, 0, 0);
  (void)run_ingress(rig.tracer, rig.pipeline, req);
  const std::string line = rig.tracer.records()[0].to_string();
  EXPECT_NE(line.find("REQ"), std::string::npos);
  EXPECT_NE(line.find("MCAST"), std::string::npos);
  EXPECT_NE(line.find("client=3/9"), std::string::npos);

  wire::Packet resp = make_response(ServerId{0}, 0, req);
  (void)run_ingress(rig.tracer, rig.pipeline, resp);
  const std::string fwd = rig.tracer.records()[1].to_string();
  EXPECT_NE(fwd.find("FWD port=23"), std::string::npos);
}

TEST(Tracing, ClearEmptiesRing) {
  Rig rig;
  wire::Packet req = make_request(0, 1, 0, 0);
  (void)run_ingress(rig.tracer, rig.pipeline, req);
  rig.tracer.clear();
  EXPECT_TRUE(rig.tracer.records().empty());
  EXPECT_EQ(rig.tracer.total_traced(), 1U);
}

}  // namespace
}  // namespace netclone::pisa
