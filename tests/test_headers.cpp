#include <gtest/gtest.h>

#include "wire/ethernet.hpp"
#include "wire/ipv4.hpp"
#include "wire/netclone_header.hpp"
#include "wire/udp.hpp"

namespace netclone::wire {
namespace {

TEST(Mac, FromNodeIsDeterministicAndLocal) {
  const MacAddress a = MacAddress::from_node(7);
  EXPECT_EQ(a.octets[0], 0x02);  // locally administered
  EXPECT_EQ(a.octets[5], 7);
  EXPECT_EQ(a, MacAddress::from_node(7));
  EXPECT_NE(a, MacAddress::from_node(8));
  EXPECT_EQ(a.to_string(), "02:00:00:00:00:07");
}

TEST(Ethernet, RoundTrip) {
  EthernetHeader h;
  h.dst = MacAddress::from_node(1);
  h.src = MacAddress::from_node(2);
  h.ether_type = EtherType::kIpv4;
  Frame f;
  ByteWriter w{f};
  h.serialize(w);
  ASSERT_EQ(f.size(), EthernetHeader::kSize);
  ByteReader r{f};
  const EthernetHeader parsed = EthernetHeader::parse(r);
  EXPECT_EQ(parsed.dst, h.dst);
  EXPECT_EQ(parsed.src, h.src);
  EXPECT_EQ(parsed.ether_type, EtherType::kIpv4);
}

TEST(Ipv4Address, OctetsAndToString) {
  const auto a = Ipv4Address::from_octets(10, 0, 1, 101);
  EXPECT_EQ(a.value, 0x0A000165U);
  EXPECT_EQ(a.to_string(), "10.0.1.101");
}

TEST(Ipv4, RoundTripWithValidChecksum) {
  Ipv4Header h;
  h.total_length = 48;
  h.identification = 0x1234;
  h.ttl = 63;
  h.protocol = IpProto::kUdp;
  h.src = Ipv4Address::from_octets(10, 0, 0, 1);
  h.dst = Ipv4Address::from_octets(10, 0, 1, 101);
  Frame f;
  ByteWriter w{f};
  h.serialize(w);
  ASSERT_EQ(f.size(), Ipv4Header::kSize);

  ByteReader r{f};
  const Ipv4Header parsed = Ipv4Header::parse(r);
  EXPECT_EQ(parsed.src, h.src);
  EXPECT_EQ(parsed.dst, h.dst);
  EXPECT_EQ(parsed.total_length, 48);
  EXPECT_EQ(parsed.ttl, 63);
  EXPECT_TRUE(parsed.checksum_valid());
}

TEST(Ipv4, CorruptionBreaksChecksum) {
  Ipv4Header h;
  h.total_length = 40;
  h.src = Ipv4Address::from_octets(1, 2, 3, 4);
  h.dst = Ipv4Address::from_octets(5, 6, 7, 8);
  Frame f;
  ByteWriter w{f};
  h.serialize(w);
  f[16] ^= std::byte{0xFF};  // flip a dst-address byte
  ByteReader r{f};
  const Ipv4Header parsed = Ipv4Header::parse(r);
  EXPECT_FALSE(parsed.checksum_valid());
}

TEST(Ipv4, RejectsOptionsAndWrongVersion) {
  Frame f(20, std::byte{0});
  f[0] = std::byte{0x46};  // IHL 6 (has options)
  ByteReader r{f};
  EXPECT_THROW((void)Ipv4Header::parse(r), CodecError);
}

TEST(InternetChecksum, KnownVector) {
  // Classic RFC 1071 worked example.
  const std::array<std::byte, 8> data{
      std::byte{0x00}, std::byte{0x01}, std::byte{0xf2}, std::byte{0x03},
      std::byte{0xf4}, std::byte{0xf5}, std::byte{0xf6}, std::byte{0xf7}};
  EXPECT_EQ(internet_checksum(data), static_cast<std::uint16_t>(~0xddf2));
}

TEST(Udp, RoundTrip) {
  UdpHeader h;
  h.src_port = 40001;
  h.dst_port = kNetClonePort;
  h.length = 27;
  h.checksum = 0xABCD;
  Frame f;
  ByteWriter w{f};
  h.serialize(w);
  ASSERT_EQ(f.size(), UdpHeader::kSize);
  ByteReader r{f};
  const UdpHeader parsed = UdpHeader::parse(r);
  EXPECT_EQ(parsed.src_port, 40001);
  EXPECT_EQ(parsed.dst_port, kNetClonePort);
  EXPECT_EQ(parsed.length, 27);
  EXPECT_EQ(parsed.checksum, 0xABCD);
}

TEST(Udp, ChecksumNeverZero) {
  // RFC 768: a computed 0 must be sent as 0xFFFF. Find some segment whose
  // checksum computes to zero by construction: all-zero pseudo data gives
  // sum 0 -> ~0 = 0xFFFF anyway, so just assert non-zero over samples.
  for (std::uint8_t i = 0; i < 200; ++i) {
    Frame seg(8 + i, std::byte{i});
    const std::uint16_t c =
        udp_checksum(Ipv4Address::from_octets(10, 0, 0, 1),
                     Ipv4Address::from_octets(10, 0, 0, 2), seg);
    EXPECT_NE(c, 0);
  }
}

TEST(NetCloneHeader, RoundTripAllFields) {
  NetCloneHeader h;
  h.type = MsgType::kResponse;
  h.clo = CloneStatus::kClonedCopy;
  h.grp = 0xBEEF;
  h.req_id = 0x12345678;
  h.sid = 5;
  h.state = 321;
  h.idx = 1;
  h.switch_id = 7;
  h.client_id = 42;
  h.client_seq = 0xCAFEBABE;

  Frame f;
  ByteWriter w{f};
  h.serialize(w);
  ASSERT_EQ(f.size(), NetCloneHeader::kSize);

  ByteReader r{f};
  const NetCloneHeader parsed = NetCloneHeader::parse(r);
  EXPECT_EQ(parsed.type, MsgType::kResponse);
  EXPECT_EQ(parsed.clo, CloneStatus::kClonedCopy);
  EXPECT_EQ(parsed.grp, 0xBEEF);
  EXPECT_EQ(parsed.req_id, 0x12345678U);
  EXPECT_EQ(parsed.sid, 5);
  EXPECT_EQ(parsed.state, 321);
  EXPECT_EQ(parsed.idx, 1);
  EXPECT_EQ(parsed.switch_id, 7);
  EXPECT_EQ(parsed.client_id, 42);
  EXPECT_EQ(parsed.client_seq, 0xCAFEBABEU);
}

TEST(NetCloneHeader, RejectsBadType) {
  Frame f(NetCloneHeader::kSize, std::byte{0});
  f[0] = std::byte{9};
  ByteReader r{f};
  EXPECT_THROW((void)NetCloneHeader::parse(r), CodecError);
}

TEST(NetCloneHeader, RejectsBadClo) {
  Frame f(NetCloneHeader::kSize, std::byte{0});
  f[0] = std::byte{1};
  f[1] = std::byte{3};
  ByteReader r{f};
  EXPECT_THROW((void)NetCloneHeader::parse(r), CodecError);
}

TEST(NetCloneHeader, Predicates) {
  NetCloneHeader h;
  h.type = MsgType::kRequest;
  EXPECT_TRUE(h.is_request());
  EXPECT_FALSE(h.is_response());
  EXPECT_FALSE(h.cloned());
  h.clo = CloneStatus::kClonedOriginal;
  EXPECT_TRUE(h.cloned());
}

// Round-trip sweep over CLO values and types.
class HeaderSweep
    : public ::testing::TestWithParam<std::tuple<MsgType, CloneStatus>> {};

TEST_P(HeaderSweep, RoundTrips) {
  NetCloneHeader h;
  h.type = std::get<0>(GetParam());
  h.clo = std::get<1>(GetParam());
  h.req_id = 77;
  Frame f;
  ByteWriter w{f};
  h.serialize(w);
  ByteReader r{f};
  const NetCloneHeader parsed = NetCloneHeader::parse(r);
  EXPECT_EQ(parsed.type, h.type);
  EXPECT_EQ(parsed.clo, h.clo);
  EXPECT_EQ(parsed.req_id, 77U);
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, HeaderSweep,
    ::testing::Combine(::testing::Values(MsgType::kRequest,
                                         MsgType::kResponse),
                       ::testing::Values(CloneStatus::kNotCloned,
                                         CloneStatus::kClonedOriginal,
                                         CloneStatus::kClonedCopy)));

}  // namespace
}  // namespace netclone::wire
