// Odds and ends: branches not reached by the focused suites.
#include <gtest/gtest.h>

#include "sim/simulator.hpp"
#include "baselines/laedge.hpp"
#include "baselines/racksched_program.hpp"
#include "common/histogram.hpp"
#include "common/logging.hpp"
#include "harness/experiment.hpp"
#include "harness/scenario.hpp"
#include "host/client.hpp"
#include "host/service.hpp"
#include "host/workload.hpp"
#include "phys/topology.hpp"
#include "pisa/switch_device.hpp"
#include "test_util.hpp"

namespace netclone {
namespace {

using netclone::testing::CaptureNode;
using netclone::testing::make_request;
using netclone::testing::make_response;
using netclone::testing::run_ingress;

TEST(Histogram, HugeValuesStayOrdered) {
  LatencyHistogram h;
  h.record(SimTime::seconds(100.0));   // ~1e11 ns
  h.record(SimTime::seconds(1000.0));  // ~1e12 ns
  h.record(SimTime::nanoseconds(5));
  EXPECT_EQ(h.percentile(0.0).ns(), 5);
  EXPECT_LE(h.percentile(1.0), h.max());
  EXPECT_GE(static_cast<double>(h.percentile(1.0).ns()), 0.98e12);
}

TEST(Logging, LevelFilterWorks) {
  const LogLevel old = log_level();
  set_log_level(LogLevel::kError);
  log_debug("suppressed");
  log_info("suppressed");
  log_warn("suppressed");
  EXPECT_EQ(log_level(), LogLevel::kError);
  set_log_level(old);
}

TEST(Laedge, HeterogeneousCapacitiesRespectSlots) {
  // One big worker (3 slots) and one tiny (1 slot): with 4 concurrent
  // requests the coordinator must track per-worker capacity, not count
  // servers.
  sim::Simulator sim;
  phys::Topology topo{sim};
  baselines::LaedgeParams lp;
  lp.per_packet_cost = SimTime::nanoseconds(100);
  lp.workers = {
      baselines::LaedgeWorkerInfo{ServerId{0}, host::server_ip(ServerId{0}),
                                  3},
      baselines::LaedgeWorkerInfo{ServerId{1}, host::server_ip(ServerId{1}),
                                  1},
  };
  auto& coord =
      topo.add_node<baselines::LaedgeCoordinator>(sim, lp, Rng{2});
  auto& wire_end = topo.add_node<CaptureNode>("wire");
  topo.connect(coord, wire_end);
  for (std::uint32_t i = 1; i <= 4; ++i) {
    wire_end.transmit(0, make_request(0, i, 0, 0).serialize());
  }
  sim.run();
  // Total slots = 4: req1 cloned (2 slots), req2 cloned or single...
  // regardless of the exact split, dispatched copies never exceed slots.
  std::size_t to_srv0 = 0;
  std::size_t to_srv1 = 0;
  for (const auto& pkt : wire_end.packets()) {
    if (pkt.ip.dst == host::server_ip(ServerId{0})) {
      ++to_srv0;
    } else if (pkt.ip.dst == host::server_ip(ServerId{1})) {
      ++to_srv1;
    }
  }
  EXPECT_LE(to_srv0, 3U);
  EXPECT_LE(to_srv1, 1U);
  // All four slots are in use and nothing else was dispatched.
  EXPECT_EQ(to_srv0 + to_srv1, 4U);
}

TEST(RackSchedProgram, NoServersDropsRequests) {
  pisa::Pipeline pipeline;
  baselines::RackSchedProgram program{pipeline, 4, 1};
  wire::Packet pkt = make_request(0, 1, 0, 0);
  EXPECT_TRUE(run_ingress(program, pipeline, pkt).drop);
}

TEST(RackSchedProgram, CancelPacketsRoutedNotScheduled) {
  pisa::Pipeline pipeline;
  baselines::RackSchedProgram program{pipeline, 4, 1};
  program.add_server(ServerId{0}, host::server_ip(ServerId{0}), 10);
  program.add_server(ServerId{1}, host::server_ip(ServerId{1}), 11);
  wire::Packet cancel = make_request(0, 1, 0, 0);
  cancel.nc().type = wire::MsgType::kCancel;
  cancel.ip.dst = host::server_ip(ServerId{1});
  const auto md = run_ingress(program, pipeline, cancel);
  EXPECT_EQ(md.egress_port, 11U);  // routed to its addressed server
  EXPECT_EQ(program.stats().requests, 0U);
}

TEST(Client, CancelCombinesWithClosedLoop) {
  harness::ClusterConfig cfg;
  cfg.scheme = harness::Scheme::kCClone;
  cfg.server_workers = {4, 4, 4};
  cfg.factory = std::make_shared<host::FixedWorkload>(25.0);
  cfg.service =
      std::make_shared<host::SyntheticService>(host::JitterModel{0.01, 15});
  cfg.num_clients = 1;
  cfg.warmup = SimTime::milliseconds(1);
  cfg.measure = SimTime::milliseconds(8);
  cfg.client_template.loop = host::LoopMode::kClosedLoop;
  cfg.client_template.closed_loop_window = 8;
  cfg.client_template.cclone_cancel = true;
  cfg.offered_rps = 1.0;  // unused in closed loop
  harness::Experiment experiment{cfg};
  (void)experiment.run();
  const host::ClientStats& cs = experiment.clients()[0]->stats();
  EXPECT_GT(cs.completed, 100U);
  EXPECT_EQ(cs.cancels_sent, cs.completed);
  EXPECT_EQ(cs.completed, cs.requests_sent);
}

TEST(SwitchDevice, CustomStageCountIsHonoured) {
  sim::Simulator sim;
  pisa::SwitchParams params;
  params.stage_count = 4;
  pisa::SwitchDevice device{sim, "small", params};
  EXPECT_EQ(device.pipeline().stage_count(), 4U);
  EXPECT_THROW(
      pisa::RegisterScalar<int>(device.pipeline(), "beyond", 4),
      CheckFailure);
}

TEST(Workloads, ScenarioBimodalKeysApply) {
  const harness::Scenario s = harness::parse_scenario(
      "workload = bimodal\nbimodal_short_us = 10\nbimodal_long_us = 100\n"
      "bimodal_short_fraction = 0.8\n");
  const harness::ClusterConfig cfg = s.build_config();
  EXPECT_DOUBLE_EQ(cfg.factory->mean_intrinsic_us(),
                   0.8 * 10.0 + 0.2 * 100.0);
}

TEST(Client, BurstyWithViaSwitchConserves) {
  // Bursty + closed features off, NetClone path: already covered; here
  // direct-random (no switch steering) with bursts.
  harness::ClusterConfig cfg;
  cfg.scheme = harness::Scheme::kBaseline;
  cfg.server_workers = {4, 4};
  cfg.factory = std::make_shared<host::ExponentialWorkload>(25.0);
  cfg.service =
      std::make_shared<host::SyntheticService>(host::JitterModel{0.0, 1.0});
  cfg.client_template.arrival = host::ArrivalProcess::kBursty;
  cfg.client_template.burst_on_fraction = 0.5;
  cfg.warmup = SimTime::milliseconds(1);
  cfg.measure = SimTime::milliseconds(8);
  cfg.offered_rps = 0.2 * harness::cluster_capacity_rps({4, 4}, 25.0);
  harness::Experiment experiment{cfg};
  const auto result = experiment.run();
  std::uint64_t completed = 0;
  for (const host::Client* client : experiment.clients()) {
    completed += client->stats().completed;
  }
  EXPECT_EQ(completed, result.requests_sent);
}

}  // namespace
}  // namespace netclone
