#include "pisa/lpm_table.hpp"

#include <gtest/gtest.h>

#include "baselines/agg_router.hpp"
#include "test_util.hpp"

namespace netclone::pisa {
namespace {

wire::Ipv4Address ip(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                     std::uint8_t d) {
  return wire::Ipv4Address::from_octets(a, b, c, d);
}

class LpmTest : public ::testing::Test {
 protected:
  Pipeline pipeline_;
  LpmTable<int> table_{pipeline_, "routes", 0, 128};

  std::optional<int> lookup(wire::Ipv4Address addr) {
    PipelinePass pass{pipeline_};
    return table_.lookup(pass, addr);
  }
};

TEST_F(LpmTest, LongestPrefixWins) {
  table_.insert(ip(10, 0, 0, 0), 8, 1);
  table_.insert(ip(10, 0, 1, 0), 24, 2);
  table_.insert(ip(10, 0, 1, 101), 32, 3);
  EXPECT_EQ(lookup(ip(10, 9, 9, 9)), 1);
  EXPECT_EQ(lookup(ip(10, 0, 1, 7)), 2);
  EXPECT_EQ(lookup(ip(10, 0, 1, 101)), 3);
}

TEST_F(LpmTest, DefaultRouteCatchesEverything) {
  table_.insert(ip(0, 0, 0, 0), 0, 99);
  EXPECT_EQ(lookup(ip(192, 168, 1, 1)), 99);
  table_.insert(ip(192, 168, 0, 0), 16, 5);
  EXPECT_EQ(lookup(ip(192, 168, 1, 1)), 5);
}

TEST_F(LpmTest, MissWithoutDefault) {
  table_.insert(ip(10, 0, 0, 0), 8, 1);
  EXPECT_EQ(lookup(ip(11, 0, 0, 1)), std::nullopt);
}

TEST_F(LpmTest, PrefixBitsBeyondLengthIgnored) {
  table_.insert(ip(10, 0, 1, 77), 24, 4);  // host bits set, /24 route
  EXPECT_EQ(lookup(ip(10, 0, 1, 3)), 4);
}

TEST_F(LpmTest, EraseRemovesRoute) {
  table_.insert(ip(10, 0, 0, 0), 8, 1);
  table_.erase(ip(10, 0, 0, 0), 8);
  EXPECT_EQ(lookup(ip(10, 1, 2, 3)), std::nullopt);
  EXPECT_EQ(table_.entry_count(), 0U);
}

TEST_F(LpmTest, BadLengthRejected) {
  EXPECT_THROW((void)table_.insert(ip(1, 2, 3, 4), 33, 0), CheckFailure);
}

#if NETCLONE_PIPELINE_CHECKS
TEST_F(LpmTest, SingleAccessPerPassEnforced) {
  table_.insert(ip(10, 0, 0, 0), 8, 1);
  PipelinePass pass{pipeline_};
  (void)table_.lookup(pass, ip(10, 0, 0, 1));
  EXPECT_THROW((void)table_.lookup(pass, ip(10, 0, 0, 2)), CheckFailure);
}
#endif  // NETCLONE_PIPELINE_CHECKS

TEST(CounterArray, CountsPacketsAndBytes) {
  Pipeline pipeline;
  CounterArray counters{pipeline, "ctr", 0, 4};
  PipelinePass pass{pipeline};
  counters.count(pass, 1, 100);
  counters.count(pass, 1, 50);  // stateless: multiple per pass allowed
  counters.count(pass, 3, 7);
  EXPECT_EQ(counters.packets(1), 2U);
  EXPECT_EQ(counters.bytes(1), 150U);
  EXPECT_EQ(counters.packets(3), 1U);
  EXPECT_EQ(counters.packets(0), 0U);
}

TEST(CounterArray, SoftStateResets) {
  Pipeline pipeline;
  CounterArray counters{pipeline, "ctr", 0, 2};
  {
    PipelinePass pass{pipeline};
    counters.count(pass, 0, 10);
  }
  pipeline.reset_soft_state();
  EXPECT_EQ(counters.packets(0), 0U);
  EXPECT_EQ(counters.bytes(0), 0U);
}

TEST(CounterArray, OutOfRangeThrows) {
  Pipeline pipeline;
  CounterArray counters{pipeline, "ctr", 0, 2};
  PipelinePass pass{pipeline};
  EXPECT_THROW((void)counters.count(pass, 2, 1), CheckFailure);
}

}  // namespace
}  // namespace netclone::pisa

namespace netclone::baselines {
namespace {

using netclone::testing::make_request;
using netclone::testing::run_ingress;

TEST(AggRouter, RoutesBySubnetAndCounts) {
  pisa::Pipeline pipeline;
  AggRouterProgram router{pipeline, 4};
  // Rack 1 subnet via port 0, rack 2 via port 1, clients via port 2.
  router.add_prefix(wire::Ipv4Address::from_octets(10, 0, 1, 0), 24, 0);
  router.add_prefix(wire::Ipv4Address::from_octets(10, 0, 2, 0), 24, 1);
  router.add_prefix(wire::Ipv4Address::from_octets(10, 0, 0, 0), 24, 2);

  wire::Packet to_server = make_request(0, 1, 0, 0);
  to_server.ip.dst = host::server_ip(ServerId{3});  // 10.0.1.104
  const auto md = run_ingress(router, pipeline, to_server);
  EXPECT_EQ(md.egress_port, 0U);
  // The NetClone header passed through untouched: no req id assigned.
  EXPECT_EQ(to_server.nc().req_id, 0U);

  wire::Packet to_client = make_request(0, 2, 0, 0);
  to_client.ip.dst = host::client_ip(1);
  EXPECT_EQ(run_ingress(router, pipeline, to_client).egress_port, 2U);

  wire::Packet nowhere = make_request(0, 3, 0, 0);
  nowhere.ip.dst = wire::Ipv4Address::from_octets(172, 16, 0, 1);
  EXPECT_TRUE(run_ingress(router, pipeline, nowhere).drop);

  EXPECT_EQ(router.stats().routed, 2U);
  EXPECT_EQ(router.stats().no_route_drops, 1U);
  EXPECT_EQ(router.port_packets(0), 1U);
  EXPECT_EQ(router.port_packets(2), 1U);
}

}  // namespace
}  // namespace netclone::baselines
