// Property test: LpmTable against a brute-force reference over randomized
// prefix sets and lookups.
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "pisa/lpm_table.hpp"

namespace netclone::pisa {
namespace {

struct RefEntry {
  std::uint32_t prefix;
  std::uint8_t len;
  int value;
};

std::uint32_t mask_of(std::uint8_t len) {
  return len == 0 ? 0
                  : ~std::uint32_t{0}
                        << (32 - static_cast<std::uint32_t>(len));
}

std::optional<int> reference_lookup(const std::vector<RefEntry>& entries,
                                    std::uint32_t addr) {
  std::optional<int> best;
  int best_len = -1;
  for (const RefEntry& e : entries) {
    if ((addr & mask_of(e.len)) == (e.prefix & mask_of(e.len)) &&
        static_cast<int>(e.len) > best_len) {
      best = e.value;
      best_len = e.len;
    }
  }
  return best;
}

class LpmProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LpmProperty, MatchesBruteForceReference) {
  Rng rng{GetParam()};
  Pipeline pipeline;
  LpmTable<int> table{pipeline, "routes", 0, 512};
  std::vector<RefEntry> reference;

  // Random prefixes, clustered in a /8 so overlaps actually happen.
  for (int i = 0; i < 120; ++i) {
    const auto len = static_cast<std::uint8_t>(rng.next_below(33));
    const std::uint32_t prefix =
        0x0A000000U | static_cast<std::uint32_t>(rng.next_below(1 << 24));
    const int value = i;
    table.insert(wire::Ipv4Address{prefix}, len, value);
    // The reference keeps last-wins semantics for identical (prefix,len).
    const std::uint32_t canonical = prefix & mask_of(len);
    bool replaced = false;
    for (RefEntry& e : reference) {
      if ((e.prefix & mask_of(e.len)) == canonical && e.len == len) {
        e.value = value;
        replaced = true;
        break;
      }
    }
    if (!replaced) {
      reference.push_back(RefEntry{prefix, len, value});
    }
  }

  for (int i = 0; i < 4000; ++i) {
    const std::uint32_t addr =
        rng.bernoulli(0.8)
            ? 0x0A000000U |
                  static_cast<std::uint32_t>(rng.next_below(1 << 24))
            : rng.next_u32();
    PipelinePass pass{pipeline};
    const auto got = table.lookup(pass, wire::Ipv4Address{addr});
    const auto want = reference_lookup(reference, addr);
    if (want.has_value()) {
      ASSERT_TRUE(got.has_value()) << "addr=" << addr;
      // When several prefixes share the longest length, both pick one of
      // them; lengths must agree, and for our generator values at equal
      // (prefix,len) are unique, so values must match too.
      EXPECT_EQ(*got, *want) << "addr=" << addr;
    } else {
      EXPECT_FALSE(got.has_value()) << "addr=" << addr;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LpmProperty,
                         ::testing::Values(1, 7, 42, 1234, 99999));

}  // namespace
}  // namespace netclone::pisa
