#include "sim/simulator.hpp"
#include "baselines/laedge.hpp"

#include <gtest/gtest.h>

#include "phys/topology.hpp"
#include "test_util.hpp"

namespace netclone::baselines {
namespace {

using namespace netclone::literals;
using netclone::testing::CaptureNode;
using netclone::testing::make_request;
using netclone::testing::make_response;

LaedgeParams two_workers(std::uint32_t capacity) {
  LaedgeParams p;
  p.per_packet_cost = 1_us;
  p.workers = {
      LaedgeWorkerInfo{ServerId{0}, host::server_ip(ServerId{0}), capacity},
      LaedgeWorkerInfo{ServerId{1}, host::server_ip(ServerId{1}), capacity},
  };
  return p;
}

struct Rig {
  sim::Simulator sim;
  phys::Topology topo{sim};
  LaedgeCoordinator* coord = nullptr;
  CaptureNode* wire_end = nullptr;

  explicit Rig(LaedgeParams params) {
    coord = &topo.add_node<LaedgeCoordinator>(sim, params, Rng{5});
    wire_end = &topo.add_node<CaptureNode>("wire");
    topo.connect(*coord, *wire_end);
  }

  void inject(const wire::Packet& pkt) {
    wire_end->transmit(0, pkt.serialize());
  }
};

TEST(Laedge, ClonesWhenTwoWorkersIdle) {
  Rig rig{two_workers(1)};
  rig.inject(make_request(0, 1, 0, 0));
  rig.sim.run();
  const auto out = rig.wire_end->packets();
  ASSERT_EQ(out.size(), 2U);  // one copy per idle worker
  EXPECT_NE(out[0].ip.dst, out[1].ip.dst);
  for (const auto& pkt : out) {
    EXPECT_EQ(pkt.ip.src, host::coordinator_ip());
    EXPECT_TRUE(pkt.nc().is_request());
    EXPECT_EQ(pkt.nc().client_seq, 1U);
  }
  EXPECT_EQ(rig.coord->stats().cloned, 1U);
}

TEST(Laedge, ForwardsSingleWhenOneIdle) {
  Rig rig{two_workers(1)};
  rig.inject(make_request(0, 1, 0, 0));  // clones to both -> none idle
  rig.inject(make_request(0, 2, 0, 0));  // queued
  rig.sim.run();
  EXPECT_EQ(rig.coord->stats().cloned, 1U);
  EXPECT_EQ(rig.coord->stats().queued, 1U);
  EXPECT_EQ(rig.coord->pending_requests(), 1U);

  // One worker answers: request 2 dispatches to exactly that free worker.
  const auto out1 = rig.wire_end->packets();
  wire::Packet resp = make_response(ServerId{0}, 0, out1[0]);
  rig.inject(resp);
  rig.sim.run();
  EXPECT_EQ(rig.coord->pending_requests(), 0U);
  EXPECT_EQ(rig.coord->stats().forwarded_single, 1U);
  const auto out2 = rig.wire_end->packets();
  // New frames: the relayed response + the dispatched request 2.
  ASSERT_EQ(out2.size(), 4U);
}

TEST(Laedge, RelaysFirstResponseAbsorbsDuplicate) {
  Rig rig{two_workers(1)};
  rig.inject(make_request(3, 9, 0, 0));
  rig.sim.run();
  const auto copies = rig.wire_end->packets();
  ASSERT_EQ(copies.size(), 2U);

  rig.inject(make_response(ServerId{0}, 0, copies[0]));
  rig.inject(make_response(ServerId{1}, 0, copies[1]));
  rig.sim.run();

  EXPECT_EQ(rig.coord->stats().relayed_responses, 1U);
  EXPECT_EQ(rig.coord->stats().absorbed_duplicates, 1U);
  const auto all = rig.wire_end->packets();
  // 2 dispatched copies + exactly 1 relayed response.
  ASSERT_EQ(all.size(), 3U);
  const wire::Packet& relayed = all[2];
  EXPECT_TRUE(relayed.nc().is_response());
  EXPECT_EQ(relayed.ip.dst, host::client_ip(3));
  EXPECT_EQ(relayed.nc().client_seq, 9U);
}

TEST(Laedge, QueuesWhenAllBusyAndDrainsInOrder) {
  Rig rig{two_workers(1)};
  rig.inject(make_request(0, 1, 0, 0));  // occupies both workers
  rig.inject(make_request(0, 2, 0, 0));  // queued
  rig.inject(make_request(0, 3, 0, 0));  // queued
  rig.sim.run();
  EXPECT_EQ(rig.coord->pending_requests(), 2U);
  EXPECT_EQ(rig.coord->stats().max_queue_depth, 2U);

  // Free both workers: queued requests dispatch FCFS (2 before 3).
  auto copies = rig.wire_end->packets();
  rig.inject(make_response(ServerId{0}, 0, copies[0]));
  rig.inject(make_response(ServerId{1}, 0, copies[1]));
  rig.sim.run();
  EXPECT_EQ(rig.coord->pending_requests(), 0U);
  const auto all = rig.wire_end->packets();
  std::vector<std::uint32_t> dispatched_seqs;
  for (const auto& pkt : all) {
    if (pkt.nc().is_request() && pkt.nc().client_seq > 1) {
      dispatched_seqs.push_back(pkt.nc().client_seq);
    }
  }
  ASSERT_EQ(dispatched_seqs.size(), 2U);
  EXPECT_EQ(dispatched_seqs[0], 2U);
  EXPECT_EQ(dispatched_seqs[1], 3U);
}

TEST(Laedge, MultiSlotWorkersCountAsIdle) {
  Rig rig{two_workers(2)};
  rig.inject(make_request(0, 1, 0, 0));
  rig.inject(make_request(0, 2, 0, 0));
  rig.sim.run();
  // Both requests cloned: capacity 2 means workers stay idle after one
  // outstanding copy each.
  EXPECT_EQ(rig.coord->stats().cloned, 2U);
  EXPECT_EQ(rig.wire_end->packets().size(), 4U);
}

TEST(Laedge, CpuSerializesPacketHandling) {
  Rig rig{two_workers(4)};
  const SimTime start = rig.sim.now();
  for (std::uint32_t i = 1; i <= 4; ++i) {
    rig.inject(make_request(0, i, 0, 0));
  }
  rig.sim.run();
  // 4 rx + 8 tx = 12 packet-times of 1 us on one core, plus wire time.
  EXPECT_GT((rig.sim.now() - start).us(), 12.0);
}

TEST(Laedge, RequestsShedWhenRingFull) {
  LaedgeParams p = two_workers(1);
  p.rx_ring_capacity = 4;
  Rig rig{p};
  for (std::uint32_t i = 1; i <= 100; ++i) {
    rig.inject(make_request(0, i, 0, 0));
  }
  rig.sim.run();
  EXPECT_GT(rig.coord->stats().rx_ring_drops, 0U);
  EXPECT_LT(rig.coord->stats().requests, 100U);
}

TEST(Laedge, ResponsesBypassTheRing) {
  LaedgeParams p = two_workers(1);
  p.rx_ring_capacity = 1;
  Rig rig{p};
  rig.inject(make_request(0, 1, 0, 0));
  rig.sim.run();
  auto copies = rig.wire_end->packets();
  ASSERT_EQ(copies.size(), 2U);
  // Flood requests, then deliver a response: it must still be processed.
  for (std::uint32_t i = 2; i <= 50; ++i) {
    rig.inject(make_request(0, i, 0, 0));
  }
  rig.inject(make_response(ServerId{0}, 0, copies[0]));
  rig.sim.run();
  EXPECT_EQ(rig.coord->stats().relayed_responses, 1U);
}

TEST(Laedge, RequiresWorkers) {
  sim::Simulator sim;
  LaedgeParams p;
  EXPECT_THROW((void)LaedgeCoordinator(sim, p, Rng{1}), CheckFailure);
}

}  // namespace
}  // namespace netclone::baselines
