// Full chaos sweep (slow lane): >= 100 seed x randomized-fault-plan
// combinations, each checked against the cross-layer invariant auditor
// and the same-seed determinism digest, with pooled-frame balance
// verified across every experiment's lifetime. The quick 12-combo
// variant runs in tier1 (test_faults.cpp).
#include <gtest/gtest.h>

#include "chaos_util.hpp"

namespace netclone {
namespace {

TEST(ChaosSweepFull, HundredCombos) {
  for (std::uint64_t combo = 0; combo < 100; ++combo) {
    netclone::testing::run_chaos_combo(100 + combo);
  }
}

}  // namespace
}  // namespace netclone
