#include "common/types.hpp"

#include <gtest/gtest.h>

#include "common/stats.hpp"  // to_string(SimTime) lives in the stats TU

namespace netclone {
namespace {

using namespace netclone::literals;

TEST(SimTime, DefaultIsZero) {
  EXPECT_EQ(SimTime{}.ns(), 0);
  EXPECT_EQ(SimTime::zero().ns(), 0);
}

TEST(SimTime, FactoryConversions) {
  EXPECT_EQ(SimTime::nanoseconds(42).ns(), 42);
  EXPECT_EQ(SimTime::microseconds(1.5).ns(), 1500);
  EXPECT_EQ(SimTime::milliseconds(2.0).ns(), 2000000);
  EXPECT_EQ(SimTime::seconds(0.001).ns(), 1000000);
}

TEST(SimTime, Literals) {
  EXPECT_EQ((5_ns).ns(), 5);
  EXPECT_EQ((5_us).ns(), 5000);
  EXPECT_EQ((5_ms).ns(), 5000000);
  EXPECT_EQ((5_s).ns(), 5000000000LL);
}

TEST(SimTime, UnitAccessors) {
  const SimTime t = SimTime::nanoseconds(2500);
  EXPECT_DOUBLE_EQ(t.us(), 2.5);
  EXPECT_DOUBLE_EQ(t.ms(), 0.0025);
  EXPECT_DOUBLE_EQ(t.sec(), 0.0000025);
}

TEST(SimTime, Arithmetic) {
  const SimTime a = 10_us;
  const SimTime b = 3_us;
  EXPECT_EQ((a + b).ns(), 13000);
  EXPECT_EQ((a - b).ns(), 7000);
  EXPECT_EQ((a * 3).ns(), 30000);
  EXPECT_EQ((3 * b).ns(), 9000);
  EXPECT_DOUBLE_EQ(a / b, 10.0 / 3.0);
}

TEST(SimTime, CompoundAssignment) {
  SimTime t = 1_us;
  t += 2_us;
  EXPECT_EQ(t.ns(), 3000);
  t -= 1_us;
  EXPECT_EQ(t.ns(), 2000);
}

TEST(SimTime, Comparison) {
  EXPECT_LT(1_us, 2_us);
  EXPECT_LE(2_us, 2_us);
  EXPECT_GT(3_us, 2_us);
  EXPECT_EQ(1000_ns, 1_us);
  EXPECT_NE(1_ns, 2_ns);
}

TEST(SimTime, MaxIsHuge) { EXPECT_GT(SimTime::max(), 100000000_s); }

TEST(SimTime, ToStringPicksUnits) {
  EXPECT_EQ(to_string(500_ns), "500 ns");
  EXPECT_EQ(to_string(1500_ns), "1.500 us");
  EXPECT_EQ(to_string(2500_us), "2.500 ms");
  EXPECT_EQ(to_string(3_s), "3.000 s");
}

TEST(Ids, ValueRoundTrips) {
  EXPECT_EQ(value_of(ServerId{7}), 7);
  EXPECT_EQ(value_of(GroupId{300}), 300);
  EXPECT_EQ(value_of(NodeId{123456}), 123456U);
}

}  // namespace
}  // namespace netclone
