#include "sim/simulator.hpp"
#include "phys/topology.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace netclone::phys {
namespace {

using netclone::testing::CaptureNode;

TEST(Topology, DuplexPortsAreSymmetric) {
  sim::Simulator sim;
  Topology topo{sim};
  auto& a = topo.add_node<CaptureNode>("a");
  auto& b = topo.add_node<CaptureNode>("b");
  const DuplexPorts ports = topo.connect(a, b);
  EXPECT_EQ(ports.port_on_a, 0U);
  EXPECT_EQ(ports.port_on_b, 0U);
  EXPECT_EQ(a.port_count(), 1U);
  EXPECT_EQ(b.port_count(), 1U);

  a.transmit(ports.port_on_a, wire::Frame(10, std::byte{1}));
  b.transmit(ports.port_on_b, wire::Frame(20, std::byte{2}));
  sim.run();
  ASSERT_EQ(b.received.size(), 1U);
  ASSERT_EQ(a.received.size(), 1U);
  EXPECT_EQ(b.received[0].frame.size(), 10U);
  EXPECT_EQ(a.received[0].frame.size(), 20U);
  // Frames arrive on the port index of the duplex connection.
  EXPECT_EQ(b.received[0].port, ports.port_on_b);
  EXPECT_EQ(a.received[0].port, ports.port_on_a);
}

TEST(Topology, StarAssignsIncreasingPorts) {
  sim::Simulator sim;
  Topology topo{sim};
  auto& hub = topo.add_node<CaptureNode>("hub");
  auto& s1 = topo.add_node<CaptureNode>("s1");
  auto& s2 = topo.add_node<CaptureNode>("s2");
  auto& s3 = topo.add_node<CaptureNode>("s3");
  const auto p1 = topo.connect(s1, hub);
  const auto p2 = topo.connect(s2, hub);
  const auto p3 = topo.connect(s3, hub);
  EXPECT_EQ(p1.port_on_b, 0U);
  EXPECT_EQ(p2.port_on_b, 1U);
  EXPECT_EQ(p3.port_on_b, 2U);
  EXPECT_EQ(hub.port_count(), 3U);

  s2.transmit(0, wire::Frame(5, std::byte{7}));
  sim.run();
  ASSERT_EQ(hub.received.size(), 1U);
  EXPECT_EQ(hub.received[0].port, 1U);  // arrived on s2's hub port
}

TEST(Topology, LinkStatsAccessible) {
  sim::Simulator sim;
  Topology topo{sim};
  auto& a = topo.add_node<CaptureNode>("a");
  auto& b = topo.add_node<CaptureNode>("b");
  const auto ports = topo.connect(a, b);
  a.transmit(0, wire::Frame(100, std::byte{0}));
  sim.run();
  EXPECT_EQ(ports.a_to_b->stats().tx_frames, 1U);
  EXPECT_EQ(ports.b_to_a->stats().tx_frames, 0U);
  EXPECT_EQ(topo.links().size(), 2U);
}

TEST(Topology, SendOnUnpluggedPortIsLost) {
  sim::Simulator sim;
  Topology topo{sim};
  auto& a = topo.add_node<CaptureNode>("a");
  a.transmit(5, wire::Frame(10, std::byte{0}));  // no such port
  sim.run();  // must not crash
  EXPECT_TRUE(a.received.empty());
}

}  // namespace
}  // namespace netclone::phys
