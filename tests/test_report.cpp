#include "harness/report.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>

namespace netclone::harness {
namespace {

SweepPoint point(Scheme scheme, double load, double p99_us,
                 double achieved) {
  SweepPoint p;
  p.load_fraction = load;
  p.result.scheme = scheme;
  p.result.offered_rps = achieved;
  p.result.achieved_rps = achieved;
  p.result.p99 = SimTime::microseconds(p99_us);
  p.result.requests_sent = 1000;
  return p;
}

TEST(Report, DefaultLoadPointsCoverTheSweep) {
  const auto loads = default_load_points();
  ASSERT_EQ(loads.size(), 9U);
  EXPECT_DOUBLE_EQ(loads.front(), 0.1);
  EXPECT_DOUBLE_EQ(loads.back(), 0.9);
}

TEST(Report, BestImprovementPicksMaxRatio) {
  const std::vector<SweepPoint> a = {
      point(Scheme::kBaseline, 0.1, 100.0, 1.0),
      point(Scheme::kBaseline, 0.5, 300.0, 2.0)};
  const std::vector<SweepPoint> b = {
      point(Scheme::kNetClone, 0.1, 50.0, 1.0),
      point(Scheme::kNetClone, 0.5, 100.0, 2.0)};
  EXPECT_DOUBLE_EQ(best_p99_improvement(a, b), 3.0);
  // Mismatched lengths compare the common prefix.
  const std::vector<SweepPoint> shorter = {
      point(Scheme::kNetClone, 0.1, 25.0, 1.0)};
  EXPECT_DOUBLE_EQ(best_p99_improvement(a, shorter), 4.0);
  EXPECT_DOUBLE_EQ(best_p99_improvement({}, b), 0.0);
}

TEST(Report, PeakThroughput) {
  const std::vector<SweepPoint> pts = {
      point(Scheme::kBaseline, 0.1, 1.0, 500.0),
      point(Scheme::kBaseline, 0.5, 1.0, 1500.0),
      point(Scheme::kBaseline, 0.9, 1.0, 900.0)};
  EXPECT_DOUBLE_EQ(peak_throughput(pts), 1500.0);
  EXPECT_DOUBLE_EQ(peak_throughput({}), 0.0);
}

TEST(Report, ShapeCheckVerdicts) {
  ShapeCheck all_ok;
  all_ok.expect(true, "a");
  all_ok.expect(true, "b");
  EXPECT_TRUE(all_ok.report());

  ShapeCheck partial;
  partial.expect(true, "a");
  partial.expect(false, "b");
  EXPECT_FALSE(partial.report());

  ShapeCheck empty;
  EXPECT_TRUE(empty.report());
}

TEST(Report, CsvWritesHeaderAndRows) {
  const std::string path = ::testing::TempDir() + "netclone_report.csv";
  const std::vector<SweepPoint> pts = {
      point(Scheme::kNetClone, 0.5, 123.0, 42000.0)};
  ASSERT_TRUE(write_csv(path, pts));
  std::ifstream in{path};
  std::string header;
  std::string row;
  std::getline(in, header);
  std::getline(in, row);
  EXPECT_NE(header.find("scheme,load_fraction"), std::string::npos);
  EXPECT_NE(row.find("NetClone,0.500"), std::string::npos);
  EXPECT_NE(row.find("123.000"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Report, CsvFailsGracefully) {
  EXPECT_FALSE(write_csv("/nonexistent-dir/x.csv", {}));
}

TEST(Report, BenchScaleDefaultsToOne) {
  // NETCLONE_BENCH_SCALE is unset in the test environment.
  EXPECT_DOUBLE_EQ(bench_scale(), 1.0);
  EXPECT_EQ(scaled(SimTime::milliseconds(10)).ns(),
            SimTime::milliseconds(10).ns());
}

}  // namespace
}  // namespace netclone::harness
