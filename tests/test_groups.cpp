#include "core/groups.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/check.hpp"

namespace netclone::core {
namespace {

TEST(Groups, CountIsTwiceChooseTwo) {
  EXPECT_EQ(group_count(2), 2U);
  EXPECT_EQ(group_count(6), 30U);
  EXPECT_EQ(group_count(10), 90U);
  EXPECT_EQ(build_group_pairs(6).size(), group_count(6));
}

TEST(Groups, TwoServersGiveBothOrders) {
  const auto groups = build_group_pairs(2);
  ASSERT_EQ(groups.size(), 2U);
  EXPECT_EQ(groups[0], (GroupPair{0, 1}));
  EXPECT_EQ(groups[1], (GroupPair{1, 0}));
}

TEST(Groups, AllOrderedPairsDistinctAndValid) {
  constexpr std::size_t kN = 8;
  const auto groups = build_group_pairs(kN);
  std::set<std::pair<int, int>> seen;
  for (const GroupPair& g : groups) {
    EXPECT_NE(g.srv1, g.srv2);  // never pair a server with itself
    EXPECT_LT(g.srv1, kN);
    EXPECT_LT(g.srv2, kN);
    EXPECT_TRUE(seen.emplace(g.srv1, g.srv2).second) << "duplicate pair";
  }
  EXPECT_EQ(seen.size(), kN * (kN - 1));
}

TEST(Groups, FirstPositionIsBalanced) {
  // Every server appears as srv1 exactly (n-1) times, so non-cloned
  // requests (always routed to srv1) spread uniformly.
  constexpr std::size_t kN = 6;
  const auto groups = build_group_pairs(kN);
  std::array<int, kN> first_count{};
  for (const GroupPair& g : groups) {
    ++first_count[g.srv1];
  }
  for (const int c : first_count) {
    EXPECT_EQ(c, kN - 1);
  }
}

TEST(Groups, RejectsDegenerateInputs) {
  EXPECT_THROW((void)build_group_pairs(0), CheckFailure);
  EXPECT_THROW((void)build_group_pairs(1), CheckFailure);
  EXPECT_THROW((void)build_group_pairs(257), CheckFailure);
  EXPECT_NO_THROW(build_group_pairs(2));
}

// Sweep: invariants hold for every cluster size the testbed uses.
class GroupSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(GroupSweep, SizeAndSymmetry) {
  const std::size_t n = GetParam();
  const auto groups = build_group_pairs(n);
  EXPECT_EQ(groups.size(), n * (n - 1));
  // For each pair (i, j) the reversed pair is installed too.
  std::set<std::pair<int, int>> seen;
  for (const GroupPair& g : groups) {
    seen.emplace(g.srv1, g.srv2);
  }
  for (const GroupPair& g : groups) {
    EXPECT_TRUE(seen.contains({g.srv2, g.srv1}));
  }
}

INSTANTIATE_TEST_SUITE_P(ClusterSizes, GroupSweep,
                         ::testing::Values(2, 3, 4, 5, 6, 8, 16, 64));

}  // namespace
}  // namespace netclone::core
