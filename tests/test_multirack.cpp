// Multi-rack deployment (§3.7): two ToR switches both running NetClone.
// The client-side ToR stamps SWITCH_ID and performs cloning/filtering; the
// server-side ToR must recognize the foreign stamp and only route.
#include <gtest/gtest.h>

#include "sim/simulator.hpp"
#include "baselines/agg_router.hpp"
#include "core/netclone_program.hpp"
#include "host/client.hpp"
#include "host/server.hpp"
#include "host/service.hpp"
#include "host/workload.hpp"
#include "phys/topology.hpp"
#include "pisa/switch_device.hpp"

namespace netclone {
namespace {

TEST(MultiRack, CloningHappensOnlyAtClientSideTor) {
  sim::Simulator sim;
  phys::Topology topo{sim};

  auto& tor1 = topo.add_node<pisa::SwitchDevice>(sim, "tor-client");
  auto& tor2 = topo.add_node<pisa::SwitchDevice>(sim, "tor-server");

  const std::size_t recirc1 = tor1.add_internal_port();
  tor1.set_loopback_port(recirc1);
  const std::size_t recirc2 = tor2.add_internal_port();
  tor2.set_loopback_port(recirc2);

  core::NetCloneConfig cfg1;
  cfg1.switch_id = 1;
  auto prog1 = std::make_shared<core::NetCloneProgram>(tor1.pipeline(),
                                                       cfg1);
  tor1.load_program(prog1);

  core::NetCloneConfig cfg2;
  cfg2.switch_id = 2;
  auto prog2 = std::make_shared<core::NetCloneProgram>(tor2.pipeline(),
                                                       cfg2);
  tor2.load_program(prog2);

  // Inter-switch trunk.
  const auto trunk = topo.connect(tor1, tor2);

  // Two servers under tor2.
  auto service =
      std::make_shared<host::SyntheticService>(host::JitterModel{0.0, 15.0});
  std::vector<host::Server*> servers;
  for (std::uint8_t i = 0; i < 2; ++i) {
    host::ServerParams sp;
    sp.sid = ServerId{i};
    sp.workers = 4;
    auto& server = topo.add_node<host::Server>(sim, sp, service, Rng{i});
    const auto ports = topo.connect(server, tor2);
    servers.push_back(&server);
    const auto ip = host::server_ip(ServerId{i});
    // tor1 clones toward the trunk: both the original and (after
    // recirculation) the copy leave through the trunk port.
    prog1->add_server(ServerId{i}, ip, trunk.port_on_a,
                      static_cast<std::uint16_t>(i + 1));
    tor1.configure_multicast_group(static_cast<std::uint16_t>(i + 1),
                                   {trunk.port_on_a, recirc1});
    // tor2 only routes; NetClone logic is skipped for foreign packets.
    prog2->add_route(ip, ports.port_on_b);
  }
  prog1->install_groups(core::build_group_pairs(2));

  // One client under tor1.
  host::ClientParams cp;
  cp.client_id = 0;
  cp.mode = host::SendMode::kViaSwitch;
  cp.target = host::service_vip();
  cp.rate_rps = 50000.0;
  cp.num_groups = 2;
  cp.num_filter_tables = 2;
  cp.stop_at = SimTime::milliseconds(2);
  auto& client = topo.add_node<host::Client>(
      sim, cp, std::make_shared<host::ExponentialWorkload>(25.0), Rng{9});
  const auto client_ports = topo.connect(client, tor1);
  prog1->add_route(host::client_ip(0), client_ports.port_on_b);
  prog2->add_route(host::client_ip(0), trunk.port_on_b);

  client.start();
  sim.run();

  // End-to-end completion across two hops.
  EXPECT_GT(client.stats().requests_sent, 50U);
  EXPECT_EQ(client.stats().completed, client.stats().requests_sent);

  // Cloning and filtering happened at tor1 only.
  EXPECT_GT(prog1->stats().cloned_requests, 0U);
  EXPECT_GT(prog1->stats().filtered_responses, 0U);
  EXPECT_EQ(prog2->stats().cloned_requests, 0U);
  EXPECT_EQ(prog2->stats().responses, 0U);
  // tor2 classified the stamped traffic as foreign.
  EXPECT_GT(prog2->stats().foreign_tor_packets, 0U);
  EXPECT_EQ(tor2.stats().recirculated, 0U);

  // Filtering kept duplicates away from the client.
  EXPECT_EQ(client.stats().redundant_responses, 0U);

  // Both servers did real work.
  for (const host::Server* server : servers) {
    EXPECT_GT(server->stats().completed, 0U);
  }
}

TEST(MultiRack, ThroughAnLpmAggregationLayer) {
  // Client rack -- aggregation router -- server rack. The aggregation
  // switch is NetClone-oblivious: plain LPM over the two /24 subnets.
  sim::Simulator sim;
  phys::Topology topo{sim};

  auto& tor1 = topo.add_node<pisa::SwitchDevice>(sim, "tor-client");
  auto& agg = topo.add_node<pisa::SwitchDevice>(sim, "agg");
  auto& tor2 = topo.add_node<pisa::SwitchDevice>(sim, "tor-server");

  const std::size_t recirc1 = tor1.add_internal_port();
  tor1.set_loopback_port(recirc1);
  const std::size_t recirc2 = tor2.add_internal_port();
  tor2.set_loopback_port(recirc2);

  core::NetCloneConfig cfg1;
  cfg1.switch_id = 1;
  auto prog1 =
      std::make_shared<core::NetCloneProgram>(tor1.pipeline(), cfg1);
  tor1.load_program(prog1);
  core::NetCloneConfig cfg2;
  cfg2.switch_id = 2;
  auto prog2 =
      std::make_shared<core::NetCloneProgram>(tor2.pipeline(), cfg2);
  tor2.load_program(prog2);

  const auto tor1_agg = topo.connect(tor1, agg);
  const auto tor2_agg = topo.connect(tor2, agg);

  auto agg_prog =
      std::make_shared<baselines::AggRouterProgram>(agg.pipeline(), 8);
  agg.load_program(agg_prog);
  // Server subnet behind tor2, client subnet behind tor1.
  agg_prog->add_prefix(wire::Ipv4Address::from_octets(10, 0, 1, 0), 24,
                       tor2_agg.port_on_b);
  agg_prog->add_prefix(wire::Ipv4Address::from_octets(10, 0, 0, 0), 24,
                       tor1_agg.port_on_b);

  auto service =
      std::make_shared<host::SyntheticService>(host::JitterModel{0.0, 15});
  std::vector<host::Server*> servers;
  for (std::uint8_t i = 0; i < 2; ++i) {
    host::ServerParams sp;
    sp.sid = ServerId{i};
    sp.workers = 4;
    auto& server = topo.add_node<host::Server>(sim, sp, service, Rng{i});
    const auto ports = topo.connect(server, tor2);
    servers.push_back(&server);
    const auto ip = host::server_ip(ServerId{i});
    prog1->add_server(ServerId{i}, ip, tor1_agg.port_on_a,
                      static_cast<std::uint16_t>(i + 1));
    tor1.configure_multicast_group(static_cast<std::uint16_t>(i + 1),
                                   {tor1_agg.port_on_a, recirc1});
    prog2->add_route(ip, ports.port_on_b);
  }
  prog1->install_groups(core::build_group_pairs(2));

  host::ClientParams cp;
  cp.client_id = 0;
  cp.mode = host::SendMode::kViaSwitch;
  cp.target = host::service_vip();
  cp.rate_rps = 50000.0;
  cp.num_groups = 2;
  cp.num_filter_tables = 2;
  cp.stop_at = SimTime::milliseconds(2);
  auto& client = topo.add_node<host::Client>(
      sim, cp, std::make_shared<host::ExponentialWorkload>(25.0), Rng{9});
  const auto client_ports = topo.connect(client, tor1);
  prog1->add_route(host::client_ip(0), client_ports.port_on_b);
  prog2->add_route(host::client_ip(0), tor2_agg.port_on_a);

  client.start();
  sim.run();

  EXPECT_GT(client.stats().requests_sent, 50U);
  EXPECT_EQ(client.stats().completed, client.stats().requests_sent);
  EXPECT_GT(prog1->stats().cloned_requests, 0U);
  EXPECT_GT(prog1->stats().filtered_responses, 0U);
  EXPECT_EQ(prog2->stats().cloned_requests, 0U);
  EXPECT_EQ(client.stats().redundant_responses, 0U);
  // The aggregation layer carried every packet in both directions and
  // never touched the NetClone header.
  EXPECT_GT(agg_prog->stats().routed, 2 * client.stats().requests_sent);
  EXPECT_EQ(agg_prog->stats().no_route_drops, 0U);
  EXPECT_GT(agg_prog->port_packets(tor2_agg.port_on_b), 0U);
  EXPECT_GT(agg_prog->port_packets(tor1_agg.port_on_b), 0U);
}

}  // namespace
}  // namespace netclone
