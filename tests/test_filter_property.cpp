// Property-based tests of the response-filtering invariants (§3.5, DESIGN.md
// invariants 2 and 3): under randomized interleavings of cloned-response
// pairs, with collisions and losses injected,
//   (a) the FIRST response of every request is NEVER dropped;
//   (b) a dropped response is always the second of its pair;
//   (c) losing slower responses never permanently wedges a slot.
#include <gtest/gtest.h>

#include <deque>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "core/netclone_program.hpp"
#include "host/addressing.hpp"
#include "test_util.hpp"

namespace netclone::core {
namespace {

using netclone::testing::make_request;
using netclone::testing::make_response;
using netclone::testing::run_ingress;

struct FilterPropertyParams {
  std::uint64_t seed;
  std::size_t filter_slots;
  std::size_t num_tables;
  double loss_probability;  // chance the slower response never arrives
};

class FilterProperty
    : public ::testing::TestWithParam<FilterPropertyParams> {};

TEST_P(FilterProperty, FasterResponseNeverDropped) {
  const FilterPropertyParams param = GetParam();
  pisa::Pipeline pipeline;
  NetCloneConfig cfg;
  cfg.filter_slots = param.filter_slots;
  cfg.num_filter_tables = param.num_tables;
  NetCloneProgram program{pipeline, cfg};
  program.add_server(ServerId{0}, host::server_ip(ServerId{0}), 1, 1);
  program.add_server(ServerId{1}, host::server_ip(ServerId{1}), 2, 2);
  program.install_groups(build_group_pairs(2));
  program.add_route(host::client_ip(0), 9);

  Rng rng{param.seed};

  struct PendingSlower {
    wire::Packet pkt;
  };
  std::deque<PendingSlower> backlog;
  std::uint64_t first_drops = 0;
  std::uint64_t second_drops = 0;
  std::uint64_t second_passes = 0;

  std::uint32_t next_id = 1;
  for (int step = 0; step < 4000; ++step) {
    const bool emit_new = backlog.empty() || rng.bernoulli(0.55);
    if (emit_new) {
      // A new cloned request completes: its faster response arrives now.
      wire::Packet req = make_request(
          0, next_id, 0,
          static_cast<std::uint8_t>(rng.next_below(param.num_tables)));
      req.nc().clo = wire::CloneStatus::kClonedOriginal;
      req.nc().req_id = next_id++;
      wire::Packet faster = make_response(ServerId{0}, 0, req);
      const auto md = run_ingress(program, pipeline, faster);
      if (md.drop) {
        ++first_drops;
      }
      // The slower response may be lost in the network.
      if (!rng.bernoulli(param.loss_probability)) {
        wire::Packet slower = make_response(ServerId{1}, 0, req);
        slower.nc().clo = wire::CloneStatus::kClonedCopy;
        backlog.push_back(PendingSlower{std::move(slower)});
      }
    } else {
      // Deliver a random outstanding slower response (reordering).
      const std::size_t pick =
          static_cast<std::size_t>(rng.next_below(backlog.size()));
      wire::Packet slower = std::move(backlog[pick].pkt);
      backlog.erase(backlog.begin() + static_cast<std::ptrdiff_t>(pick));
      const auto md = run_ingress(program, pipeline, slower);
      if (md.drop) {
        ++second_drops;
      } else {
        ++second_passes;
      }
    }
  }

  // (a) No faster response was ever dropped, regardless of collisions.
  EXPECT_EQ(first_drops, 0U);
  // (b) Drops happened (the filter works)...
  EXPECT_GT(second_drops, 0U);
  // ...and every drop was a slower duplicate by construction; forwarded
  // duplicates (overwritten fingerprints) are allowed and counted.
  EXPECT_EQ(program.stats().filtered_responses, second_drops);
  // (c) No slot can wedge: the switch keeps storing fresh fingerprints.
  EXPECT_GT(program.stats().fingerprints_stored, 0U);
}

INSTANTIATE_TEST_SUITE_P(
    Interleavings, FilterProperty,
    ::testing::Values(
        // Large tables, no loss: the common case, expect near-perfect
        // filtering.
        FilterPropertyParams{1, 1 << 10, 2, 0.0},
        FilterPropertyParams{2, 1 << 10, 2, 0.0},
        // Tiny tables: heavy collisions, overwrites must keep (a) true.
        FilterPropertyParams{3, 8, 2, 0.0},
        FilterPropertyParams{4, 4, 1, 0.0},
        FilterPropertyParams{5, 2, 1, 0.0},
        // Packet loss: orphaned fingerprints must be overwritten, not
        // wedge the table.
        FilterPropertyParams{6, 64, 2, 0.2},
        FilterPropertyParams{7, 8, 2, 0.5},
        FilterPropertyParams{8, 1 << 10, 4, 0.05},
        FilterPropertyParams{9, 1, 1, 0.3},  // single-slot worst case
        FilterPropertyParams{10, 16, 8, 0.1}),
    [](const ::testing::TestParamInfo<FilterPropertyParams>& param_info) {
      return "seed" + std::to_string(param_info.param.seed) + "_slots" +
             std::to_string(param_info.param.filter_slots) + "_tables" +
             std::to_string(param_info.param.num_tables) + "_loss" +
             std::to_string(
                 static_cast<int>(param_info.param.loss_probability * 100));
    });

TEST(FilterEffectiveness, LargeTablesFilterNearlyAllDuplicates) {
  // With 2^17 slots and microsecond-scale reuse, the paper argues failures
  // are rare. Sequential ids + immediate pair delivery: zero failures.
  pisa::Pipeline pipeline;
  NetCloneConfig cfg;  // default: 2 x 2^17 slots
  NetCloneProgram program{pipeline, cfg};
  program.add_server(ServerId{0}, host::server_ip(ServerId{0}), 1, 1);
  program.add_server(ServerId{1}, host::server_ip(ServerId{1}), 2, 2);
  program.install_groups(build_group_pairs(2));
  program.add_route(host::client_ip(0), 9);

  Rng rng{77};
  for (std::uint32_t id = 1; id <= 5000; ++id) {
    wire::Packet req = make_request(
        0, id, 0, static_cast<std::uint8_t>(rng.next_below(2)));
    req.nc().clo = wire::CloneStatus::kClonedOriginal;
    req.nc().req_id = id;
    wire::Packet faster = make_response(ServerId{0}, 0, req);
    wire::Packet slower = make_response(ServerId{1}, 0, req);
    EXPECT_FALSE(run_ingress(program, pipeline, faster).drop);
    EXPECT_TRUE(run_ingress(program, pipeline, slower).drop);
  }
  EXPECT_EQ(program.stats().filtered_responses, 5000U);
}

}  // namespace
}  // namespace netclone::core
