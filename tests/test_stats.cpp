#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"

namespace netclone {
namespace {

TEST(StreamingStats, Empty) {
  StreamingStats s;
  EXPECT_EQ(s.count(), 0U);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(StreamingStats, SingleValue) {
  StreamingStats s;
  s.add(4.5);
  EXPECT_EQ(s.count(), 1U);
  EXPECT_DOUBLE_EQ(s.mean(), 4.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 4.5);
  EXPECT_DOUBLE_EQ(s.max(), 4.5);
}

TEST(StreamingStats, KnownSmallSet) {
  StreamingStats s;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.add(v);
  }
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance of the classic example set is 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(StreamingStats, MatchesTwoPassComputation) {
  Rng rng{5};
  StreamingStats s;
  std::vector<double> values;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.normal(100.0, 15.0);
    values.push_back(v);
    s.add(v);
  }
  double sum = 0.0;
  for (const double v : values) {
    sum += v;
  }
  const double mean = sum / static_cast<double>(values.size());
  double ss = 0.0;
  for (const double v : values) {
    ss += (v - mean) * (v - mean);
  }
  const double var = ss / static_cast<double>(values.size() - 1);
  EXPECT_NEAR(s.mean(), mean, 1e-9);
  EXPECT_NEAR(s.variance(), var, var * 1e-9);
}

TEST(ExactPercentile, EmptyIsZero) {
  EXPECT_DOUBLE_EQ(exact_percentile({}, 0.5), 0.0);
}

TEST(ExactPercentile, SmallSets) {
  const std::vector<double> v{5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(exact_percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(exact_percentile(v, 0.2), 1.0);
  EXPECT_DOUBLE_EQ(exact_percentile(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(exact_percentile(v, 1.0), 5.0);
}

TEST(ExactPercentile, DoesNotMutateInput) {
  const std::vector<double> v{3.0, 1.0, 2.0};
  (void)exact_percentile(v, 0.5);
  EXPECT_EQ(v[0], 3.0);
  EXPECT_EQ(v[1], 1.0);
}

}  // namespace
}  // namespace netclone
