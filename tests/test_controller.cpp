#include "sim/simulator.hpp"
#include "core/controller.hpp"

#include <gtest/gtest.h>

#include "host/addressing.hpp"
#include "test_util.hpp"

namespace netclone::core {
namespace {

using netclone::testing::make_request;
using netclone::testing::run_ingress;

class ControllerTest : public ::testing::Test {
 protected:
  ControllerTest()
      : device_(sim_, "tor"),
        program_(device_.pipeline(), NetCloneConfig{}),
        loopback_(device_.add_internal_port()),
        controller_(program_, device_, loopback_) {
    device_.set_loopback_port(loopback_);
    device_.load_program(
        std::shared_ptr<NetCloneProgram>(&program_, [](auto*) {}));
  }

  void add_n_servers(std::uint8_t n) {
    for (std::uint8_t i = 0; i < n; ++i) {
      controller_.add_server(ServerId{i}, host::server_ip(ServerId{i}),
                             10 + i);
    }
  }

  sim::Simulator sim_;
  pisa::SwitchDevice device_;
  NetCloneProgram program_;
  std::size_t loopback_;
  Controller controller_;
};

TEST_F(ControllerTest, GroupsTrackServerAdds) {
  EXPECT_EQ(controller_.group_count(), 0);
  add_n_servers(2);
  EXPECT_EQ(controller_.group_count(), 2);
  controller_.add_server(ServerId{2}, host::server_ip(ServerId{2}), 12);
  EXPECT_EQ(controller_.group_count(), 6);
  add_n_servers(0);
  EXPECT_EQ(controller_.live_servers().size(), 3U);
}

TEST_F(ControllerTest, McastGroupsAreDistinct) {
  const std::uint16_t a =
      controller_.add_server(ServerId{0}, host::server_ip(ServerId{0}), 10);
  const std::uint16_t b =
      controller_.add_server(ServerId{1}, host::server_ip(ServerId{1}), 11);
  EXPECT_NE(a, b);
}

TEST_F(ControllerTest, DuplicateAddRejected) {
  add_n_servers(1);
  EXPECT_THROW(controller_.add_server(ServerId{0},
                                      host::server_ip(ServerId{0}), 10),
               CheckFailure);
}

TEST_F(ControllerTest, RemoveReinstallsGroupsOverSurvivors) {
  add_n_servers(4);  // 12 groups
  EXPECT_EQ(controller_.group_count(), 12);
  controller_.remove_server(ServerId{2});
  EXPECT_EQ(controller_.group_count(), 6);
  EXPECT_FALSE(controller_.is_live(ServerId{2}));
  for (const GroupPair& g : controller_.groups()) {
    EXPECT_NE(g.srv1, 2);
    EXPECT_NE(g.srv2, 2);
  }
}

TEST_F(ControllerTest, RemoveUnknownOrBelowRedundancyRejected) {
  add_n_servers(2);
  EXPECT_THROW(controller_.remove_server(ServerId{7}), CheckFailure);
  // Two live servers: dropping to one would break NetClone's invariant.
  EXPECT_THROW(controller_.remove_server(ServerId{0}), CheckFailure);
}

TEST_F(ControllerTest, RequestsToSurvivorGroupsStillClone) {
  add_n_servers(3);
  controller_.remove_server(ServerId{1});
  // Surviving groups only reference servers 0 and 2.
  wire::Packet pkt = make_request(0, 1, /*grp=*/0, 0);
  const auto md = run_ingress(program_, device_.pipeline(), pkt);
  EXPECT_FALSE(md.drop);
  EXPECT_TRUE(md.multicast_group.has_value());
  const auto& groups = controller_.groups();
  ASSERT_EQ(groups.size(), 2U);
  EXPECT_EQ(pkt.nc().sid, groups[0].srv2);
}

TEST_F(ControllerTest, OldGroupIdsBeyondNewCountDrop) {
  add_n_servers(3);  // 6 groups installed
  controller_.remove_server(ServerId{0});  // now 2 groups
  wire::Packet pkt = make_request(0, 1, /*grp=*/5, 0);  // stale group id
  const auto md = run_ingress(program_, device_.pipeline(), pkt);
  EXPECT_TRUE(md.drop);  // clients must be told the new group count
}

}  // namespace
}  // namespace netclone::core
