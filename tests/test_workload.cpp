#include "host/workload.hpp"

#include <gtest/gtest.h>

namespace netclone::host {
namespace {

TEST(ExponentialWorkload, MeanMatches) {
  ExponentialWorkload w{25.0};
  Rng rng{1};
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    const wire::RpcRequest req = w.make(rng);
    EXPECT_EQ(req.op, wire::RpcOp::kSynthetic);
    sum += static_cast<double>(req.intrinsic_ns) / 1000.0;
  }
  EXPECT_NEAR(sum / kN, 25.0, 0.4);
  EXPECT_DOUBLE_EQ(w.mean_intrinsic_us(), 25.0);
  EXPECT_EQ(w.label(), "Exp(25)");
}

TEST(BimodalWorkload, MixtureFractions) {
  BimodalWorkload w{0.9, 25.0, 250.0};
  Rng rng{2};
  int shorts = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    const wire::RpcRequest req = w.make(rng);
    if (req.intrinsic_ns == 25000) {
      ++shorts;
    } else {
      EXPECT_EQ(req.intrinsic_ns, 250000U);
    }
  }
  EXPECT_NEAR(static_cast<double>(shorts) / kN, 0.9, 0.01);
  EXPECT_DOUBLE_EQ(w.mean_intrinsic_us(), 0.9 * 25.0 + 0.1 * 250.0);
  EXPECT_EQ(w.label(), "Bimodal(90%-25,10%-250)");
}

TEST(FixedWorkload, Deterministic) {
  FixedWorkload w{50.0};
  Rng rng{3};
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(w.make(rng).intrinsic_ns, 50000U);
  }
  EXPECT_DOUBLE_EQ(w.mean_intrinsic_us(), 50.0);
  EXPECT_EQ(w.label(), "Fixed(50)");
}

// RPC-duration sweep matching §5.1.2 (25, 50, 500 us).
class DurationSweep : public ::testing::TestWithParam<double> {};

TEST_P(DurationSweep, ExponentialMeanHoldsForAllDurations) {
  ExponentialWorkload w{GetParam()};
  Rng rng{11};
  double sum = 0.0;
  constexpr int kN = 60000;
  for (int i = 0; i < kN; ++i) {
    sum += static_cast<double>(w.make(rng).intrinsic_ns) / 1000.0;
  }
  EXPECT_NEAR(sum / kN, GetParam(), GetParam() * 0.02);
}

INSTANTIATE_TEST_SUITE_P(PaperDurations, DurationSweep,
                         ::testing::Values(25.0, 50.0, 500.0));

}  // namespace
}  // namespace netclone::host
