// Deep edge cases: collision behavior of the cloned-request table,
// stranded partial reassemblies, switch failure racing recirculation,
// and whole-cluster determinism for every scheme.
#include <gtest/gtest.h>

#include "sim/simulator.hpp"
#include "core/netclone_program.hpp"
#include "harness/experiment.hpp"
#include "host/server.hpp"
#include "host/service.hpp"
#include "host/workload.hpp"
#include "phys/topology.hpp"
#include "pisa/switch_device.hpp"
#include "test_util.hpp"

namespace netclone {
namespace {

using core::NetCloneConfig;
using core::NetCloneProgram;
using core::RequestIdMode;
using netclone::testing::CaptureNode;
using netclone::testing::make_request;
using netclone::testing::make_response;
using netclone::testing::run_ingress;

NetCloneConfig tiny_mp_config() {
  NetCloneConfig cfg;
  cfg.id_mode = RequestIdMode::kClientTuple;
  cfg.enable_multipacket = true;
  cfg.num_filter_tables = 4;
  cfg.filter_slots = 64;
  cfg.cloned_req_slots = 1;  // every multi-packet request collides
  return cfg;
}

TEST(ClonedReqTableCollision, DegradesToPartialCloningNotCorruption) {
  // Two concurrent cloned multi-packet requests share the single slot.
  // The later one overwrites; the earlier one's remaining fragments stop
  // cloning (partial cloning — §3.7 explicitly tolerates this), but
  // nothing is misrouted and affinity is preserved.
  pisa::Pipeline pipeline;
  NetCloneProgram program{pipeline, tiny_mp_config()};
  program.add_server(ServerId{0}, host::server_ip(ServerId{0}), 10, 1);
  program.add_server(ServerId{1}, host::server_ip(ServerId{1}), 11, 2);
  program.install_groups(core::build_group_pairs(2));

  auto fragment = [](std::uint32_t seq, std::uint8_t idx,
                     std::uint8_t count) {
    wire::Packet pkt = make_request(0, seq, 0, 0);
    pkt.nc().frag_idx = idx;
    pkt.nc().frag_count = count;
    return pkt;
  };

  wire::Packet a0 = fragment(1, 0, 3);
  EXPECT_TRUE(run_ingress(program, pipeline, a0).multicast_group);

  wire::Packet b0 = fragment(2, 0, 3);  // overwrites the slot
  EXPECT_TRUE(run_ingress(program, pipeline, b0).multicast_group);

  // A's follow-up no longer matches: forwarded (not cloned) to srv1 —
  // partial cloning, correct destination.
  wire::Packet a1 = fragment(1, 1, 3);
  const auto md_a1 = run_ingress(program, pipeline, a1);
  EXPECT_FALSE(md_a1.multicast_group.has_value());
  EXPECT_EQ(md_a1.egress_port, 10U);
  EXPECT_EQ(a1.nc().clo, wire::CloneStatus::kNotCloned);

  // B's follow-ups still clone; the last one clears the slot.
  wire::Packet b1 = fragment(2, 1, 3);
  EXPECT_TRUE(run_ingress(program, pipeline, b1).multicast_group);
  wire::Packet b2 = fragment(2, 2, 3);
  EXPECT_TRUE(run_ingress(program, pipeline, b2).multicast_group);
  wire::Packet b_again = fragment(2, 1, 3);
  EXPECT_FALSE(
      run_ingress(program, pipeline, b_again).multicast_group.has_value());
}

TEST(StrandedPartials, ExpiredByTtlSweep) {
  sim::Simulator sim;
  phys::Topology topo{sim};
  host::ServerParams sp;
  sp.sid = ServerId{0};
  sp.workers = 4;
  sp.partial_request_ttl = SimTime::microseconds(100.0);
  auto& server = topo.add_node<host::Server>(
      sim, sp,
      std::make_shared<host::SyntheticService>(host::JitterModel{0.0, 1.0}),
      Rng{1});
  auto& wire_end = topo.add_node<CaptureNode>("wire");
  topo.connect(server, wire_end);

  // A lone first fragment of a 2-fragment request: its partner never
  // arrives (e.g. the clone-half was dropped at admission).
  wire::Packet orphan = make_request(0, 1, 0, 0, 1000);
  orphan.nc().frag_idx = 0;
  orphan.nc().frag_count = 2;
  wire_end.transmit(0, orphan.serialize());
  sim.run();
  EXPECT_EQ(server.stats().reassembled_requests, 0U);

  // Drive > 4096 dispatches (the lazy-sweep cadence) well past the TTL,
  // paced so the link's egress queue never overflows.
  const SimTime base = sim.now();
  for (std::uint32_t i = 2; i < 4200; ++i) {
    sim.schedule_at(base + SimTime::nanoseconds(500 * i),
                    [&wire_end, i] {
                      wire_end.transmit(
                          0, make_request(0, i, 0, 0, 0).serialize());
                    });
  }
  sim.run();
  EXPECT_GE(server.stats().expired_partials, 1U);
  EXPECT_EQ(server.stats().completed, 4198U);  // the orphan never ran
}

TEST(FailureRace, RecirculatedCloneDiesWithTheSwitch) {
  // Fail the switch in the recirculation gap: the loopback copy must be
  // dropped (dropped_while_failed), never half-processed.
  sim::Simulator sim;
  phys::Topology topo{sim};
  auto& tor = topo.add_node<pisa::SwitchDevice>(sim, "tor");
  const std::size_t recirc = tor.add_internal_port();
  tor.set_loopback_port(recirc);
  auto program = std::make_shared<NetCloneProgram>(tor.pipeline(),
                                                   NetCloneConfig{});
  tor.load_program(program);
  auto& a = topo.add_node<CaptureNode>("a");
  auto& b = topo.add_node<CaptureNode>("b");
  auto& client = topo.add_node<CaptureNode>("client");
  const auto pa = topo.connect(a, tor);
  const auto pb = topo.connect(b, tor);
  const auto pc = topo.connect(client, tor);
  program->add_server(ServerId{0}, host::server_ip(ServerId{0}),
                      pa.port_on_b, 1);
  program->add_server(ServerId{1}, host::server_ip(ServerId{1}),
                      pb.port_on_b, 2);
  tor.configure_multicast_group(1, {pa.port_on_b, recirc});
  tor.configure_multicast_group(2, {pb.port_on_b, recirc});
  program->install_groups(core::build_group_pairs(2));
  program->add_route(host::client_ip(0), pc.port_on_b);

  client.transmit(0, netclone::testing::make_request(0, 1, 0, 0)
                         .serialize());
  // The frame reaches the switch at ~860 ns; the original leaves after
  // the 400 ns pipeline; the clone re-enters at +450 ns more. Fail right
  // inside that window.
  sim.schedule_at(SimTime::nanoseconds(1450), [&] { tor.fail(); });
  sim.run();
  EXPECT_EQ(program->stats().cloned_requests, 1U);
  EXPECT_EQ(program->stats().recirculated_clones, 0U);  // died in the loop
  EXPECT_GE(tor.stats().dropped_while_failed, 1U);
  EXPECT_TRUE(b.received.empty());  // the clone's target never saw it
}

class DeterminismSweep
    : public ::testing::TestWithParam<harness::Scheme> {};

TEST_P(DeterminismSweep, IdenticalSeedsGiveIdenticalRuns) {
  harness::ClusterConfig cfg;
  cfg.scheme = GetParam();
  cfg.server_workers = {4, 4, 4};
  cfg.factory = std::make_shared<host::ExponentialWorkload>(25.0);
  cfg.service = std::make_shared<host::SyntheticService>(
      host::JitterModel{0.01, 15.0, 0.08});
  cfg.warmup = SimTime::milliseconds(1);
  cfg.measure = SimTime::milliseconds(5);
  cfg.offered_rps = GetParam() == harness::Scheme::kLaedge
                        ? 50000.0
                        : 0.4 * harness::cluster_capacity_rps(
                                    cfg.server_workers, 25.0 * 1.14);
  harness::Experiment e1{cfg};
  harness::Experiment e2{cfg};
  const auto r1 = e1.run();
  const auto r2 = e2.run();
  EXPECT_EQ(r1.requests_sent, r2.requests_sent);
  EXPECT_EQ(r1.completed, r2.completed);
  EXPECT_EQ(r1.p99, r2.p99);
  EXPECT_EQ(r1.p999, r2.p999);
  EXPECT_EQ(r1.cloned_requests, r2.cloned_requests);
  EXPECT_EQ(r1.filtered_responses, r2.filtered_responses);
  EXPECT_EQ(r1.redundant_responses, r2.redundant_responses);
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, DeterminismSweep,
    ::testing::Values(harness::Scheme::kBaseline, harness::Scheme::kCClone,
                      harness::Scheme::kLaedge, harness::Scheme::kNetClone,
                      harness::Scheme::kNetCloneNoFilter,
                      harness::Scheme::kRackSched,
                      harness::Scheme::kNetCloneRackSched),
    [](const ::testing::TestParamInfo<harness::Scheme>& param_info) {
      std::string name = harness::scheme_name(param_info.param);
      for (char& c : name) {
        if (c == '-' || c == '+') {
          c = '_';
        }
      }
      return name;
    });

}  // namespace
}  // namespace netclone
