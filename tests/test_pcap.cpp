#include "wire/pcap.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <vector>

#include "wire/frame.hpp"

namespace netclone::wire {
namespace {

std::vector<unsigned char> slurp(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  return {std::istreambuf_iterator<char>{in},
          std::istreambuf_iterator<char>{}};
}

class PcapTest : public ::testing::Test {
 protected:
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_ = ::testing::TempDir() + "netclone_test.pcap";
};

TEST_F(PcapTest, GlobalHeaderIsWellFormed) {
  { PcapWriter writer{path_}; }
  const auto bytes = slurp(path_);
  ASSERT_EQ(bytes.size(), 24U);
  // Little-endian magic 0xA1B2C3D4.
  EXPECT_EQ(bytes[0], 0xD4);
  EXPECT_EQ(bytes[1], 0xC3);
  EXPECT_EQ(bytes[2], 0xB2);
  EXPECT_EQ(bytes[3], 0xA1);
  EXPECT_EQ(bytes[20], 1);  // LINKTYPE_ETHERNET
}

TEST_F(PcapTest, RecordsFrames) {
  const Frame frame(60, std::byte{0xAB});
  {
    PcapWriter writer{path_};
    writer.write(SimTime::microseconds(1.5), frame);
    writer.write(SimTime::seconds(2.0), frame);
    EXPECT_EQ(writer.frames_written(), 2U);
  }
  const auto bytes = slurp(path_);
  // 24 global + 2 * (16 record header + 60 payload).
  ASSERT_EQ(bytes.size(), 24U + 2 * (16 + 60));
  // First record: ts_sec 0, ts_usec 1 (1.5us truncates to 1), len 60.
  EXPECT_EQ(bytes[24], 0);
  EXPECT_EQ(bytes[28], 1);
  EXPECT_EQ(bytes[32], 60);
  // Second record timestamp: 2 seconds.
  EXPECT_EQ(bytes[24 + 16 + 60], 2);
}

TEST_F(PcapTest, UnwritablePathThrows) {
  EXPECT_THROW(PcapWriter{"/nonexistent-dir/x.pcap"}, std::runtime_error);
}

}  // namespace
}  // namespace netclone::wire
