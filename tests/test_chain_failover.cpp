// Chain fail-over and rejoin on the replicated aggregation tier: killing
// and re-admitting every chain position (head, middle, tail) must keep
// the extended auditor clean, reproduce bit-identical chaos digests
// across the legacy engine and 1/4-shard runs, move the verdict
// authority when the tail dies, and resync a rejoined replica to the
// exact soft-state image of the survivors. The randomized quick sweep at
// the end is the tier-1 slice of the full multi-rack chaos lane
// (test_multirack_chaos.cpp, slow label).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "harness/faults.hpp"
#include "harness/invariants.hpp"
#include "harness/multirack.hpp"
#include "harness/scenario.hpp"
#include "host/service.hpp"
#include "host/workload.hpp"

namespace netclone::harness {
namespace {

// Legacy engine, sharded machinery on one queue, and a full split.
constexpr std::size_t kShardCounts[] = {0, 1, 4};

// Three replicas so head (agg0), middle (agg1), and tail (agg2) are
// distinct chain positions; two server racks so candidate pairs span
// racks while duplicates are in flight across the pod.
MultiRackConfig pod_config(std::uint64_t seed) {
  MultiRackConfig cfg;
  cfg.server_racks = 2;
  cfg.servers_per_rack = 2;
  cfg.num_aggs = 3;
  cfg.agg_mode = AggMode::kReplicated;
  cfg.workers = 4;
  cfg.num_clients = 4;
  cfg.factory = std::make_shared<host::ExponentialWorkload>(25.0);
  cfg.service =
      std::make_shared<host::SyntheticService>(host::JitterModel{0.01, 15});
  cfg.warmup = SimTime::milliseconds(1);
  cfg.measure = SimTime::milliseconds(5);
  cfg.drain = SimTime::milliseconds(6);
  cfg.seed = seed;
  cfg.offered_rps =
      0.4 * cluster_capacity_rps({4, 4, 4, 4}, 25.0 * 1.14);
  // Retransmission absorbs the losses a crash inflicts (requests sprayed
  // at the corpse, responses that died inside it).
  cfg.client_template.retransmit_timeout = SimTime::microseconds(400.0);
  cfg.client_template.max_retransmits = 6;
  return cfg;
}

FaultPlan kill_and_rejoin(std::size_t replica) {
  const std::string target = "agg" + std::to_string(replica);
  FaultPlan plan;
  plan.events.push_back(parse_fault_entry("at=2ms agg_fail " + target));
  plan.events.push_back(parse_fault_entry("at=3500us agg_rejoin " + target));
  return plan;
}

struct RunOutcome {
  std::uint64_t digest = 0;
  std::uint64_t executed = 0;
  std::uint64_t completed = 0;
};

RunOutcome run_with_shards(MultiRackConfig cfg, std::size_t shards,
                           std::size_t rejoined) {
  cfg.num_shards = shards;
  MultiRackExperiment exp{cfg};
  const ExperimentResult result = exp.run();

  const InvariantReport report = audit_invariants(exp);
  EXPECT_TRUE(report.ok()) << "shards=" << shards << ":\n"
                           << report.to_string();

  const ChainController* ctrl = exp.chain_controller();
  EXPECT_NE(ctrl, nullptr);
  std::vector<std::size_t> members;
  if (ctrl != nullptr) {
    EXPECT_TRUE(ctrl->quiescent()) << "shards=" << shards;
    EXPECT_EQ(ctrl->fails_of(rejoined), 1u);
    members = ctrl->admitted_members();
  }
  EXPECT_EQ(members.size(), cfg.num_aggs)
      << "shards=" << shards << ": the rejoined replica never re-admitted";

  // Resync correctness: the rejoined node carries the exact soft-state
  // image of every survivor, and its filter table holds no more live
  // fingerprints than the survivors' (bounded, not accreted).
  const auto& rejoined_program = exp.agg_netclone_program(rejoined);
  EXPECT_TRUE(rejoined_program.chain_member());
  for (const std::size_t a : members) {
    EXPECT_EQ(exp.agg_netclone_program(a).soft_state_digest(),
              rejoined_program.soft_state_digest())
        << "shards=" << shards << ": agg" << a
        << " diverged from the rejoined replica";
    EXPECT_EQ(exp.agg_netclone_program(a).filter_occupancy(),
              rejoined_program.filter_occupancy())
        << "shards=" << shards;
  }
  EXPECT_GT(rejoined_program.stats().chain_sync_installs, 0u)
      << "rejoin never installed a snapshot";

  RunOutcome out;
  out.digest = chaos_digest(exp);
  out.executed = exp.executed_events();
  out.completed = result.completed;
  return out;
}

void expect_identical_across_shards(const MultiRackConfig& cfg,
                                    std::size_t rejoined,
                                    const char* what) {
  const RunOutcome reference =
      run_with_shards(cfg, kShardCounts[0], rejoined);
  EXPECT_GT(reference.completed, 0u) << what << ": nothing completed";
  for (std::size_t i = 1; i < std::size(kShardCounts); ++i) {
    const std::size_t shards = kShardCounts[i];
    const RunOutcome outcome = run_with_shards(cfg, shards, rejoined);
    EXPECT_EQ(outcome.digest, reference.digest)
        << what << ": digest diverged at " << shards << " shards";
    EXPECT_EQ(outcome.executed, reference.executed)
        << what << ": executed_events diverged at " << shards << " shards";
    EXPECT_EQ(outcome.completed, reference.completed)
        << what << ": completions diverged at " << shards << " shards";
  }
}

TEST(ChainFailover, HeadKillAndRejoinConvergesAcrossShards) {
  for (const std::uint64_t seed : {11u, 12u, 13u}) {
    MultiRackConfig cfg = pod_config(seed);
    cfg.faults = kill_and_rejoin(0);
    expect_identical_across_shards(
        cfg, 0, ("head seed " + std::to_string(seed)).c_str());
  }
}

TEST(ChainFailover, MiddleKillAndRejoinConvergesAcrossShards) {
  for (const std::uint64_t seed : {11u, 12u, 13u}) {
    MultiRackConfig cfg = pod_config(seed);
    cfg.faults = kill_and_rejoin(1);
    expect_identical_across_shards(
        cfg, 1, ("middle seed " + std::to_string(seed)).c_str());
  }
}

TEST(ChainFailover, TailKillAndRejoinConvergesAcrossShards) {
  for (const std::uint64_t seed : {11u, 12u, 13u}) {
    MultiRackConfig cfg = pod_config(seed);
    cfg.faults = kill_and_rejoin(2);
    expect_identical_across_shards(
        cfg, 2, ("tail seed " + std::to_string(seed)).c_str());
  }
}

TEST(ChainFailover, TailDeathMovesVerdictAuthority) {
  // Kill the tail and do NOT rejoin it: the predecessor must take over
  // as the verdict authority and keep enacting filter verdicts — none
  // lost (duplicates would leak to clients and fail the client-side
  // exactly-once audit) and none enacted twice (the corpse's counter is
  // frozen; only one live tail exists at any instant).
  MultiRackConfig cfg = pod_config(11);
  cfg.faults.events.push_back(parse_fault_entry("at=2ms agg_fail agg2"));
  MultiRackExperiment exp{cfg};
  const ExperimentResult result = exp.run();
  EXPECT_GT(result.completed, 0u);

  const auto& old_tail = exp.agg_netclone_program(2);
  const auto& new_tail = exp.agg_netclone_program(1);
  EXPECT_FALSE(old_tail.chain_member());
  EXPECT_TRUE(new_tail.is_chain_tail());
  EXPECT_FALSE(exp.agg_netclone_program(0).is_chain_tail());
  // Both tails enacted verdicts during their reign.
  EXPECT_GT(old_tail.stats().filtered_responses, 0u);
  EXPECT_GT(new_tail.stats().filtered_responses, 0u);
  // The new tail only enacts verdicts it computed itself.
  EXPECT_LE(new_tail.stats().filtered_responses,
            new_tail.stats().filter_hits);

  const ChainController* ctrl = exp.chain_controller();
  ASSERT_NE(ctrl, nullptr);
  EXPECT_EQ(ctrl->admitted_members(), (std::vector<std::size_t>{0, 1}));
  const InvariantReport report = audit_invariants(exp);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(ChainFailover, SurvivorsStayConvergentWithoutRejoin) {
  // A mid-chain death with no rejoin: the spliced chain (head, tail)
  // must still converge — the reconcile marker repaired whatever the
  // successor missed around the crash.
  MultiRackConfig cfg = pod_config(12);
  cfg.faults.events.push_back(parse_fault_entry("at=2ms agg_fail agg1"));
  MultiRackExperiment exp{cfg};
  const ExperimentResult result = exp.run();
  EXPECT_GT(result.completed, 0u);
  EXPECT_EQ(exp.agg_netclone_program(0).soft_state_digest(),
            exp.agg_netclone_program(2).soft_state_digest());
  // The reconcile marker walked the spliced chain: filled at the head,
  // installed (or skipped as stale) downstream.
  EXPECT_GT(exp.agg_netclone_program(0).stats().chain_sync_snapshots_filled,
            0u);
  EXPECT_GT(exp.agg_netclone_program(2).stats().chain_sync_markers, 0u);
  const InvariantReport report = audit_invariants(exp);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(ChainFailover, QuickChaosSweepIsAuditCleanAndReproducible) {
  // Randomized fail/rejoin schedules (positions and instants drawn from
  // a per-seed stream, spaced by the installer's contract) must stay
  // audit-clean and digest-identical between the legacy engine and a
  // 4-shard run.
  for (const std::uint64_t seed : {21u, 22u, 23u}) {
    Rng rng{seed * 7919};
    MultiRackConfig cfg = pod_config(seed);
    const std::size_t victim = rng.next_below(3);
    const double fail_us = 1500.0 + 1000.0 * rng.next_double();
    const double rejoin_us = fail_us + 800.0 + 400.0 * rng.next_double();
    FaultEvent fail;
    fail.at = SimTime::microseconds(fail_us);
    fail.action = FaultAction::kAggFail;
    fail.target = "agg" + std::to_string(victim);
    FaultEvent rejoin;
    rejoin.at = SimTime::microseconds(rejoin_us);
    rejoin.action = FaultAction::kAggRejoin;
    rejoin.target = fail.target;
    cfg.faults.events = {fail, rejoin};
    if (rng.next_below(2) == 0) {
      // Sometimes a second, later fail of a different replica (left
      // dead) on top of the rejoin.
      FaultEvent second;
      second.at = SimTime::microseconds(rejoin_us + 900.0);
      second.action = FaultAction::kAggFail;
      second.target = "agg" + std::to_string((victim + 1) % 3);
      cfg.faults.events.push_back(second);
    }

    const auto digest_at = [&](std::size_t shards) {
      MultiRackConfig run_cfg = cfg;
      run_cfg.num_shards = shards;
      MultiRackExperiment exp{run_cfg};
      (void)exp.run();
      const InvariantReport report = audit_invariants(exp);
      EXPECT_TRUE(report.ok())
          << "seed " << seed << " shards " << shards << ":\n"
          << report.to_string();
      return chaos_digest(exp);
    };
    EXPECT_EQ(digest_at(0), digest_at(4)) << "seed " << seed;
  }
}

TEST(ChainFailover, ScenarioCarriesFaultsToTheFatTree) {
  // The scenario front end accepts fat-tree fault lines and threads them
  // into MultiRackConfig — the sweep runs the fail-over under load.
  const Scenario s = parse_scenario(R"(
    scheme = netclone
    racks = 2
    servers_per_rack = 2
    aggs = 3
    agg_mode = replicated
    workers = 4
    clients = 4
    loads = 0.4
    measure_ms = 5
    warmup_ms = 1
    fault = at=2ms agg_fail agg1
    fault = at=3500us agg_rejoin agg1
  )");
  ASSERT_EQ(s.faults.events.size(), 2u);
  const MultiRackConfig cfg = s.build_multirack_config();
  EXPECT_EQ(cfg.faults.events.size(), 2u);
  const auto points = s.run();
  ASSERT_EQ(points.size(), 1u);
  EXPECT_GT(points[0].result.completed, 0u);
}

}  // namespace
}  // namespace netclone::harness
