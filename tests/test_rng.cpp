#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace netclone {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a{123};
  Rng b{123};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a{1};
  Rng b{2};
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += a.next_u64() == b.next_u64() ? 1 : 0;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng{7};
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, DoubleMeanNearHalf) {
  Rng rng{11};
  double sum = 0.0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) {
    sum += rng.next_double();
  }
  EXPECT_NEAR(sum / kN, 0.5, 0.005);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng{3};
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 7ULL, 100ULL, 1000003ULL}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(Rng, NextBelowZeroBoundIsZero) {
  Rng rng{3};
  EXPECT_EQ(rng.next_below(0), 0U);
}

TEST(Rng, NextBelowCoversAllValues) {
  Rng rng{5};
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    seen.insert(rng.next_below(6));
  }
  EXPECT_EQ(seen.size(), 6U);
}

TEST(Rng, UniformIntInclusiveRange) {
  Rng rng{9};
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const std::int64_t v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo = saw_lo || v == -3;
    saw_hi = saw_hi || v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng{13};
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliRate) {
  Rng rng{17};
  int hits = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    hits += rng.bernoulli(0.25) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.25, 0.01);
}

TEST(Rng, ExponentialMeanAndPositivity) {
  Rng rng{19};
  double sum = 0.0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.exponential(25.0);
    EXPECT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / kN, 25.0, 0.5);
}

TEST(Rng, NormalMoments) {
  Rng rng{23};
  double sum = 0.0;
  double sum_sq = 0.0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.normal(10.0, 2.0);
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / kN;
  const double var = sum_sq / kN - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent{31};
  Rng child = parent.fork();
  // The child must not replay the parent's stream.
  Rng parent_copy{31};
  (void)parent_copy.next_u64();  // align with the fork's draw
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += child.next_u64() == parent_copy.next_u64() ? 1 : 0;
  }
  EXPECT_EQ(same, 0);
}

// Property sweep: exponential draws from any seed have the right mean.
class RngSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngSeedSweep, ExponentialMeanHolds) {
  Rng rng{GetParam()};
  double sum = 0.0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) {
    sum += rng.exponential(10.0);
  }
  EXPECT_NEAR(sum / kN, 10.0, 0.35);
}

TEST_P(RngSeedSweep, NextBelowIsRoughlyUniform) {
  Rng rng{GetParam()};
  constexpr std::uint64_t kBuckets = 10;
  constexpr int kN = 100000;
  std::array<int, kBuckets> counts{};
  for (int i = 0; i < kN; ++i) {
    ++counts[rng.next_below(kBuckets)];
  }
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), kN / 10.0, kN * 0.01);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(1, 2, 42, 12345, 0xDEADBEEF,
                                           0xFFFFFFFFFFFFFFFFULL));

}  // namespace
}  // namespace netclone
