#include "core/netclone_program.hpp"

#include <gtest/gtest.h>

#include "host/addressing.hpp"
#include "test_util.hpp"

namespace netclone::core {
namespace {

using netclone::testing::make_request;
using netclone::testing::make_response;
using netclone::testing::run_ingress;

constexpr std::size_t kPortSrv0 = 10;
constexpr std::size_t kPortSrv1 = 11;
constexpr std::size_t kPortSrv2 = 12;
constexpr std::size_t kPortClient = 20;
constexpr std::uint16_t kMcastSrv0 = 1;
constexpr std::uint16_t kMcastSrv1 = 2;
constexpr std::uint16_t kMcastSrv2 = 3;

class NetCloneProgramTest : public ::testing::Test {
 protected:
  NetCloneProgramTest() : program_(pipeline_, make_config()) {
    program_.add_server(ServerId{0}, host::server_ip(ServerId{0}), kPortSrv0,
                        kMcastSrv0);
    program_.add_server(ServerId{1}, host::server_ip(ServerId{1}), kPortSrv1,
                        kMcastSrv1);
    program_.add_server(ServerId{2}, host::server_ip(ServerId{2}), kPortSrv2,
                        kMcastSrv2);
    program_.install_groups(build_group_pairs(3));
    program_.add_route(host::client_ip(0), kPortClient);
  }

  static NetCloneConfig make_config() {
    NetCloneConfig cfg;
    cfg.filter_slots = 64;  // small tables force collisions in tests
    return cfg;
  }

  /// Marks a server as busy in the tracked state via a response.
  void set_state(ServerId sid, std::uint16_t qlen) {
    wire::Packet req = make_request(0, 1, 0, 0);
    wire::Packet resp = make_response(sid, qlen, req);
    (void)run_ingress(program_, pipeline_, resp);
  }

  pisa::Pipeline pipeline_;
  NetCloneProgram program_;
};

TEST_F(NetCloneProgramTest, AssignsMonotonicRequestIds) {
  for (std::uint32_t i = 1; i <= 5; ++i) {
    wire::Packet pkt = make_request(0, i, 0, 0);
    (void)run_ingress(program_, pipeline_, pkt);
    EXPECT_EQ(pkt.nc().req_id, i);
  }
  EXPECT_EQ(program_.stats().requests, 5U);
}

TEST_F(NetCloneProgramTest, BothIdleClonesViaMulticast) {
  // Group 0 of build_group_pairs(3) is {0, 1}; initial states are idle.
  wire::Packet pkt = make_request(0, 1, /*grp=*/0, /*idx=*/0);
  const auto md = run_ingress(program_, pipeline_, pkt);
  EXPECT_FALSE(md.drop);
  ASSERT_TRUE(md.multicast_group.has_value());
  EXPECT_EQ(*md.multicast_group, kMcastSrv0);
  EXPECT_EQ(pkt.nc().clo, wire::CloneStatus::kClonedOriginal);
  EXPECT_EQ(pkt.nc().sid, 1);  // second candidate for the recirc copy
  EXPECT_EQ(pkt.ip.dst, host::server_ip(ServerId{0}));
  EXPECT_EQ(program_.stats().cloned_requests, 1U);
}

TEST_F(NetCloneProgramTest, FirstCandidateBusyForwardsWithoutCloning) {
  set_state(ServerId{0}, 3);
  wire::Packet pkt = make_request(0, 1, 0, 0);
  const auto md = run_ingress(program_, pipeline_, pkt);
  EXPECT_FALSE(md.multicast_group.has_value());
  EXPECT_EQ(md.egress_port, kPortSrv0);  // still goes to srv1 of the group
  EXPECT_EQ(pkt.nc().clo, wire::CloneStatus::kNotCloned);
}

TEST_F(NetCloneProgramTest, SecondCandidateBusyForwardsWithoutCloning) {
  set_state(ServerId{1}, 1);
  wire::Packet pkt = make_request(0, 1, 0, 0);
  const auto md = run_ingress(program_, pipeline_, pkt);
  EXPECT_FALSE(md.multicast_group.has_value());
  EXPECT_EQ(md.egress_port, kPortSrv0);
}

TEST_F(NetCloneProgramTest, StateRecoversWhenQueueEmpties) {
  set_state(ServerId{0}, 5);
  set_state(ServerId{0}, 0);
  wire::Packet pkt = make_request(0, 1, 0, 0);
  const auto md = run_ingress(program_, pipeline_, pkt);
  EXPECT_TRUE(md.multicast_group.has_value());
}

TEST_F(NetCloneProgramTest, RecirculatedCloneSteeredToSecondCandidate) {
  wire::Packet pkt = make_request(0, 1, 0, 0);
  (void)run_ingress(program_, pipeline_, pkt);  // clones; sid = 1

  // The multicast copy re-enters ingress through the loopback port.
  wire::Packet clone = pkt;
  const auto md =
      run_ingress(program_, pipeline_, clone, 0, /*recirculated=*/true);
  EXPECT_EQ(clone.nc().clo, wire::CloneStatus::kClonedCopy);
  EXPECT_EQ(clone.ip.dst, host::server_ip(ServerId{1}));
  EXPECT_EQ(md.egress_port, kPortSrv1);
  EXPECT_EQ(clone.nc().req_id, pkt.nc().req_id);  // shared request id
  EXPECT_EQ(program_.stats().recirculated_clones, 1U);
}

TEST_F(NetCloneProgramTest, ResponseUpdatesBothStateTables) {
  wire::Packet req = make_request(0, 1, 0, 0);
  wire::Packet resp = make_response(ServerId{2}, 7, req);
  const auto md = run_ingress(program_, pipeline_, resp);
  EXPECT_EQ(md.egress_port, kPortClient);
  EXPECT_EQ(program_.peek_state(ServerId{2}), 7);
}

TEST_F(NetCloneProgramTest, NonClonedResponseSkipsFilter) {
  wire::Packet req = make_request(0, 1, 0, 0);
  wire::Packet resp = make_response(ServerId{0}, 0, req);
  resp.nc().clo = wire::CloneStatus::kNotCloned;
  resp.nc().req_id = 42;
  const auto md = run_ingress(program_, pipeline_, resp);
  EXPECT_FALSE(md.drop);
  EXPECT_EQ(program_.stats().fingerprints_stored, 0U);
}

TEST_F(NetCloneProgramTest, FasterResponseForwardedSlowerDropped) {
  wire::Packet req = make_request(0, 1, 0, 1);
  req.nc().clo = wire::CloneStatus::kClonedOriginal;
  req.nc().req_id = 77;

  wire::Packet faster = make_response(ServerId{0}, 0, req);
  const auto md1 = run_ingress(program_, pipeline_, faster);
  EXPECT_FALSE(md1.drop);
  EXPECT_EQ(program_.stats().fingerprints_stored, 1U);

  wire::Packet slower = make_response(ServerId{1}, 0, req);
  slower.nc().clo = wire::CloneStatus::kClonedCopy;
  const auto md2 = run_ingress(program_, pipeline_, slower);
  EXPECT_TRUE(md2.drop);
  EXPECT_EQ(program_.stats().filtered_responses, 1U);

  // The slot was cleared: a later request reusing the hash slot works.
  const std::uint32_t slot = NetCloneProgram::filter_hash(77, 64);
  EXPECT_EQ(program_.peek_filter_slot(1, slot), 0U);
}

TEST_F(NetCloneProgramTest, SlotClearedAllowsImmediateReuse) {
  wire::Packet req = make_request(0, 1, 0, 0);
  req.nc().clo = wire::CloneStatus::kClonedOriginal;
  req.nc().req_id = 100;
  wire::Packet r1 = make_response(ServerId{0}, 0, req);
  wire::Packet r2 = make_response(ServerId{1}, 0, req);
  (void)run_ingress(program_, pipeline_, r1);
  (void)run_ingress(program_, pipeline_, r2);

  // Same slot, new request id: full cycle again.
  req.nc().req_id = 200;
  wire::Packet r3 = make_response(ServerId{0}, 0, req);
  wire::Packet r4 = make_response(ServerId{1}, 0, req);
  EXPECT_FALSE(run_ingress(program_, pipeline_, r3).drop);
  EXPECT_TRUE(run_ingress(program_, pipeline_, r4).drop);
}

TEST_F(NetCloneProgramTest, CollisionOverwritesInsteadOfWedging) {
  // Two cloned requests whose ids collide in the same table (§3.5: the
  // overwrite is deliberate; the orphaned slower response then passes).
  const std::uint32_t id_a = 5;
  std::uint32_t id_b = 6;
  const std::uint32_t slots = 64;
  while (NetCloneProgram::filter_hash(id_b, slots) !=
         NetCloneProgram::filter_hash(id_a, slots)) {
    ++id_b;
  }

  wire::Packet req = make_request(0, 1, 0, 0);
  req.nc().clo = wire::CloneStatus::kClonedOriginal;

  req.nc().req_id = id_a;
  wire::Packet fast_a = make_response(ServerId{0}, 0, req);
  EXPECT_FALSE(run_ingress(program_, pipeline_, fast_a).drop);

  req.nc().req_id = id_b;
  wire::Packet fast_b = make_response(ServerId{0}, 0, req);
  EXPECT_FALSE(run_ingress(program_, pipeline_, fast_b).drop);  // overwrite

  // A's slower response no longer matches (fingerprint was overwritten):
  // it is forwarded — redundant at the client but never lost — and, being
  // a non-match, it overwrites the slot again with id_a.
  req.nc().req_id = id_a;
  wire::Packet slow_a = make_response(ServerId{1}, 0, req);
  EXPECT_FALSE(run_ingress(program_, pipeline_, slow_a).drop);
  EXPECT_EQ(program_.peek_filter_slot(
                0, NetCloneProgram::filter_hash(id_a, 64)),
            id_a);

  // B's slower response therefore also misses and cascades through — a
  // collision degrades gracefully into client-side redundancy, never into
  // a lost response (the client still filters duplicates itself).
  req.nc().req_id = id_b;
  wire::Packet slow_b = make_response(ServerId{1}, 0, req);
  EXPECT_FALSE(run_ingress(program_, pipeline_, slow_b).drop);
  EXPECT_EQ(program_.stats().filtered_responses, 0U);
}

TEST_F(NetCloneProgramTest, DifferentTableIndexAvoidsCollision) {
  // Same hash slot but different IDX -> different tables, no interference.
  const std::uint32_t id_a = 5;
  std::uint32_t id_b = 6;
  while (NetCloneProgram::filter_hash(id_b, 64) !=
         NetCloneProgram::filter_hash(id_a, 64)) {
    ++id_b;
  }
  wire::Packet req_a = make_request(0, 1, 0, /*idx=*/0);
  req_a.nc().clo = wire::CloneStatus::kClonedOriginal;
  req_a.nc().req_id = id_a;
  wire::Packet req_b = make_request(0, 2, 0, /*idx=*/1);
  req_b.nc().clo = wire::CloneStatus::kClonedOriginal;
  req_b.nc().req_id = id_b;

  wire::Packet fast_a = make_response(ServerId{0}, 0, req_a);
  wire::Packet fast_b = make_response(ServerId{0}, 0, req_b);
  EXPECT_FALSE(run_ingress(program_, pipeline_, fast_a).drop);
  EXPECT_FALSE(run_ingress(program_, pipeline_, fast_b).drop);

  // Both slower responses are individually filtered: no cross-table damage.
  wire::Packet slow_a = make_response(ServerId{1}, 0, req_a);
  wire::Packet slow_b = make_response(ServerId{1}, 0, req_b);
  EXPECT_TRUE(run_ingress(program_, pipeline_, slow_a).drop);
  EXPECT_TRUE(run_ingress(program_, pipeline_, slow_b).drop);
}

TEST_F(NetCloneProgramTest, LostSlowerResponseDoesNotWedgeSlot) {
  // Fingerprint stored, slower response lost in the network. A different
  // request hashing to the same slot must still work via overwrite (§3.6).
  const std::uint32_t id_a = 9;
  std::uint32_t id_b = 10;
  while (NetCloneProgram::filter_hash(id_b, 64) !=
         NetCloneProgram::filter_hash(id_a, 64)) {
    ++id_b;
  }
  wire::Packet req = make_request(0, 1, 0, 0);
  req.nc().clo = wire::CloneStatus::kClonedOriginal;
  req.nc().req_id = id_a;
  wire::Packet fast_a = make_response(ServerId{0}, 0, req);
  EXPECT_FALSE(run_ingress(program_, pipeline_, fast_a).drop);
  // (slower response of id_a never arrives)

  req.nc().req_id = id_b;
  wire::Packet fast_b = make_response(ServerId{0}, 0, req);
  wire::Packet slow_b = make_response(ServerId{1}, 0, req);
  EXPECT_FALSE(run_ingress(program_, pipeline_, fast_b).drop);
  EXPECT_TRUE(run_ingress(program_, pipeline_, slow_b).drop);
}

TEST_F(NetCloneProgramTest, FilteringDisabledForwardsDuplicates) {
  NetCloneConfig cfg = make_config();
  cfg.enable_filtering = false;
  pisa::Pipeline pipeline;
  NetCloneProgram program{pipeline, cfg};
  program.add_server(ServerId{0}, host::server_ip(ServerId{0}), kPortSrv0,
                     kMcastSrv0);
  program.add_server(ServerId{1}, host::server_ip(ServerId{1}), kPortSrv1,
                     kMcastSrv1);
  program.install_groups(build_group_pairs(2));
  program.add_route(host::client_ip(0), kPortClient);

  wire::Packet req = make_request(0, 1, 0, 0);
  req.nc().clo = wire::CloneStatus::kClonedOriginal;
  req.nc().req_id = 3;
  wire::Packet r1 = make_response(ServerId{0}, 0, req);
  wire::Packet r2 = make_response(ServerId{1}, 0, req);
  EXPECT_FALSE(run_ingress(program, pipeline, r1).drop);
  EXPECT_FALSE(run_ingress(program, pipeline, r2).drop);  // duplicate passes
  EXPECT_EQ(program.stats().filtered_responses, 0U);
}

TEST_F(NetCloneProgramTest, CloningDisabledNeverClones) {
  NetCloneConfig cfg = make_config();
  cfg.enable_cloning = false;
  pisa::Pipeline pipeline;
  NetCloneProgram program{pipeline, cfg};
  program.add_server(ServerId{0}, host::server_ip(ServerId{0}), kPortSrv0,
                     kMcastSrv0);
  program.add_server(ServerId{1}, host::server_ip(ServerId{1}), kPortSrv1,
                     kMcastSrv1);
  program.install_groups(build_group_pairs(2));

  wire::Packet pkt = make_request(0, 1, 0, 0);
  const auto md = run_ingress(program, pipeline, pkt);
  EXPECT_FALSE(md.multicast_group.has_value());
  EXPECT_EQ(md.egress_port, kPortSrv0);
  EXPECT_EQ(program.stats().cloned_requests, 0U);
}

TEST_F(NetCloneProgramTest, UnknownGroupDropsRequest) {
  wire::Packet pkt = make_request(0, 1, /*grp=*/999, 0);
  const auto md = run_ingress(program_, pipeline_, pkt);
  EXPECT_TRUE(md.drop);
  EXPECT_EQ(program_.stats().missing_route_drops, 1U);
}

TEST_F(NetCloneProgramTest, MalformedFreshCloIsDropped) {
  wire::Packet pkt = make_request(0, 1, 0, 0);
  pkt.nc().clo = wire::CloneStatus::kClonedCopy;
  const auto md = run_ingress(program_, pipeline_, pkt);
  EXPECT_TRUE(md.drop);
}

TEST_F(NetCloneProgramTest, StampsSwitchIdOnFreshRequests) {
  wire::Packet pkt = make_request(0, 1, 0, 0);
  EXPECT_EQ(pkt.nc().switch_id, 0);
  (void)run_ingress(program_, pipeline_, pkt);
  EXPECT_EQ(pkt.nc().switch_id, program_.config().switch_id);
}

TEST_F(NetCloneProgramTest, ForeignTorPacketsOnlyRouted) {
  wire::Packet pkt = make_request(0, 1, 0, 0);
  pkt.nc().switch_id = 42;  // stamped by another rack's ToR
  pkt.ip.dst = host::client_ip(0);
  const auto md = run_ingress(program_, pipeline_, pkt);
  EXPECT_EQ(md.egress_port, kPortClient);
  EXPECT_EQ(pkt.nc().req_id, 0U);  // untouched: no NetClone processing
  EXPECT_EQ(program_.stats().foreign_tor_packets, 1U);
  EXPECT_EQ(program_.stats().requests, 0U);
}

TEST_F(NetCloneProgramTest, NonNetClonePacketsUseL3Routing) {
  wire::Packet pkt;
  pkt.ip.src = host::server_ip(ServerId{0});
  pkt.ip.dst = host::client_ip(0);
  pkt.udp.src_port = 5555;
  pkt.udp.dst_port = 6666;
  const auto md = run_ingress(program_, pipeline_, pkt);
  EXPECT_EQ(md.egress_port, kPortClient);
}

TEST_F(NetCloneProgramTest, RemovedServerDropsInFlightClones) {
  wire::Packet pkt = make_request(0, 1, 0, 0);
  (void)run_ingress(program_, pipeline_, pkt);  // cloned toward sid 1
  program_.remove_server(ServerId{1});

  wire::Packet clone = pkt;
  const auto md =
      run_ingress(program_, pipeline_, clone, 0, /*recirculated=*/true);
  EXPECT_TRUE(md.drop);
}

TEST_F(NetCloneProgramTest, SequenceResetsAfterSoftStateWipe) {
  wire::Packet pkt = make_request(0, 1, 0, 0);
  (void)run_ingress(program_, pipeline_, pkt);
  EXPECT_EQ(pkt.nc().req_id, 1U);
  pipeline_.reset_soft_state();  // switch reboot (§3.6)
  wire::Packet pkt2 = make_request(0, 2, 0, 0);
  (void)run_ingress(program_, pipeline_, pkt2);
  EXPECT_EQ(pkt2.nc().req_id, 1U);  // restarts from 0 harmlessly
}

TEST_F(NetCloneProgramTest, BadIdxToleratedByModulo) {
  wire::Packet req = make_request(0, 1, 0, /*idx=*/7);  // only 2 tables
  req.nc().clo = wire::CloneStatus::kClonedOriginal;
  req.nc().req_id = 55;
  wire::Packet fast = make_response(ServerId{0}, 0, req);
  wire::Packet slow = make_response(ServerId{1}, 0, req);
  EXPECT_FALSE(run_ingress(program_, pipeline_, fast).drop);
  EXPECT_TRUE(run_ingress(program_, pipeline_, slow).drop);
}

TEST_F(NetCloneProgramTest, ConfigValidation) {
  pisa::Pipeline pipeline;
  NetCloneConfig cfg;
  cfg.num_filter_tables = 0;
  EXPECT_THROW((void)NetCloneProgram(pipeline, cfg), CheckFailure);
}

}  // namespace
}  // namespace netclone::core
