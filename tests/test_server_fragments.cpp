// Server-side multi-packet handling (§3.7): fragment reassembly pins the
// request to fragment 0 regardless of arrival order, duplicates are
// counted instead of double-consumed, cancels purge partial reassemblies,
// per-fragment clone drops strand partials, and fragmented scatter-gather
// responses reassemble cleanly at a real client.
#include <gtest/gtest.h>

#include "host/client.hpp"
#include "host/server.hpp"
#include "host/workload.hpp"
#include "phys/topology.hpp"
#include "sim/simulator.hpp"
#include "test_util.hpp"

namespace netclone::host {
namespace {

using namespace netclone::literals;
using netclone::testing::CaptureNode;
using netclone::testing::make_request;

struct Rig {
  sim::Simulator sim;
  phys::Topology topo{sim};
  Server* server = nullptr;
  CaptureNode* wire_end = nullptr;

  explicit Rig(ServerParams params) {
    server = &topo.add_node<Server>(
        sim, params,
        std::make_shared<SyntheticService>(JitterModel{0.0, 15.0}), Rng{42});
    wire_end = &topo.add_node<CaptureNode>("wire");
    topo.connect(*server, *wire_end);
  }

  void inject(wire::Packet pkt) { wire_end->transmit(0, pkt.serialize()); }

  [[nodiscard]] std::vector<wire::Packet> responses() const {
    return wire_end->packets();
  }
};

ServerParams params_with(std::uint32_t workers) {
  ServerParams p;
  p.sid = ServerId{3};
  p.workers = workers;
  return p;
}

/// One fragment of a multi-packet request. Only fragment 0 carries the
/// RPC payload; follow-ups are header-only markers.
wire::Packet fragment(std::uint32_t seq, std::uint8_t idx,
                      std::uint8_t count) {
  wire::Packet pkt = make_request(0, seq, 0, 0, /*intrinsic_ns=*/10000);
  pkt.nc().frag_idx = idx;
  pkt.nc().frag_count = count;
  if (idx != 0) {
    pkt.payload = wire::PayloadRef{};
  }
  return pkt;
}

wire::Packet cancel_for(std::uint32_t seq) {
  wire::Packet pkt = make_request(0, seq, 0, 0);
  pkt.nc().type = wire::MsgType::kCancel;
  pkt.payload = wire::PayloadRef{};
  return pkt;
}

// Regression: the surfaced request used to be whichever fragment arrived
// first. A header-only follow-up arriving before fragment 0 then executed
// with an empty payload (no response at all), and the response echoed the
// follow-up's CLO instead of the root's cloning decision.
TEST(ServerFragments, SurfacesFragmentZeroRegardlessOfArrivalOrder) {
  Rig rig{params_with(4)};
  wire::Packet f1 = fragment(7, 1, 2);
  f1.nc().clo = wire::CloneStatus::kNotCloned;
  wire::Packet f0 = fragment(7, 0, 2);
  f0.nc().clo = wire::CloneStatus::kClonedOriginal;
  rig.inject(f1);  // follow-up first: reordered by cloning/multipath
  rig.inject(f0);
  rig.sim.run();

  const auto resp = rig.responses();
  ASSERT_EQ(resp.size(), 1U);
  // The response derives from fragment 0: payload executed, CLO echoed.
  EXPECT_EQ(resp[0].nc().clo, wire::CloneStatus::kClonedOriginal);
  EXPECT_EQ(resp[0].nc().client_seq, 7U);
  EXPECT_EQ(rig.server->stats().reassembled_requests, 1U);
  EXPECT_EQ(rig.server->stats().completed, 1U);
}

TEST(ServerFragments, InOrderArrivalStillCompletes) {
  Rig rig{params_with(4)};
  rig.inject(fragment(9, 0, 3));
  rig.inject(fragment(9, 1, 3));
  rig.inject(fragment(9, 2, 3));
  rig.sim.run();
  ASSERT_EQ(rig.responses().size(), 1U);
  EXPECT_EQ(rig.server->stats().reassembled_requests, 1U);
  EXPECT_EQ(rig.server->stats().duplicate_fragments, 0U);
}

// Regression: a duplicate ordinal (a clone that slipped past filtering,
// or a retransmit overlap) must be counted and ignored — never treated
// as a distinct fragment toward completion.
TEST(ServerFragments, DuplicateFragmentCountedAndIgnored) {
  Rig rig{params_with(4)};
  rig.inject(fragment(11, 0, 2));
  rig.inject(fragment(11, 0, 2));  // duplicate of the same ordinal
  rig.sim.run();
  EXPECT_TRUE(rig.responses().empty());  // still waiting for fragment 1
  EXPECT_EQ(rig.server->stats().duplicate_fragments, 1U);

  rig.inject(fragment(11, 1, 2));
  rig.sim.run();
  EXPECT_EQ(rig.responses().size(), 1U);  // completes exactly once
  EXPECT_EQ(rig.server->stats().reassembled_requests, 1U);
}

// Regression: a cancel that raced a partially reassembled request used to
// match nothing (the fragments were not in the queue yet), stranding the
// partial until the TTL sweep.
TEST(ServerFragments, CancelPurgesPartialReassembly) {
  Rig rig{params_with(4)};
  rig.inject(fragment(13, 0, 2));
  rig.inject(cancel_for(13));
  rig.inject(fragment(13, 1, 2));  // the late fragment must not complete
  rig.sim.run();
  EXPECT_TRUE(rig.responses().empty());
  EXPECT_EQ(rig.server->stats().cancelled_partials, 1U);
  EXPECT_EQ(rig.server->stats().cancel_misses, 0U);
  EXPECT_EQ(rig.server->stats().reassembled_requests, 0U);
}

TEST(ServerFragments, CancelStillPrefersQueuedRequest) {
  Rig rig{params_with(1)};
  rig.inject(make_request(0, 1, 0, 0, 50000));  // occupies the worker
  rig.inject(make_request(0, 2, 0, 0, 50000));  // waits in the queue
  rig.inject(cancel_for(2));
  rig.sim.run();
  EXPECT_EQ(rig.responses().size(), 1U);
  EXPECT_EQ(rig.server->stats().cancelled_requests, 1U);
  EXPECT_EQ(rig.server->stats().cancelled_partials, 0U);
}

// §3.4 applied per fragment: a cloned copy's follow-up fragment arriving
// while the queue is non-empty is dropped, stranding the partial — which
// the TTL sweep then reclaims.
TEST(ServerFragments, CloneDropStrandsPartialUntilTtlSweep) {
  ServerParams p = params_with(1);
  p.partial_request_ttl = 10_us;
  Rig rig{p};

  wire::Packet c0 = fragment(21, 0, 2);
  c0.nc().clo = wire::CloneStatus::kClonedCopy;
  rig.inject(c0);  // queue empty: the copy's fragment 0 is admitted

  rig.inject(make_request(0, 22, 0, 0, 200000));  // worker busy...
  rig.inject(make_request(0, 23, 0, 0, 200000));  // ...and queue non-empty

  wire::Packet c1 = fragment(21, 1, 2);
  c1.nc().clo = wire::CloneStatus::kClonedCopy;
  rig.inject(c1);  // dropped: the tracked idle state was stale
  rig.sim.run();

  EXPECT_EQ(rig.server->stats().dropped_stale_clones, 1U);
  EXPECT_EQ(rig.server->stats().reassembled_requests, 0U);
  EXPECT_EQ(rig.responses().size(), 2U);  // only the two originals

  // The stranded partial is reclaimed once the periodic sweep runs (every
  // 4096 dispatches) after the TTL elapsed. Feed the dispatcher in waves
  // small enough to stay inside the link's drop-tail queue.
  for (std::uint32_t wave = 0; wave < 9; ++wave) {
    for (std::uint32_t i = 0; i < 500; ++i) {
      rig.inject(make_request(0, 1000 + wave * 500 + i, 0, 0, 0));
    }
    rig.sim.run();
  }
  EXPECT_EQ(rig.server->stats().expired_partials, 1U);
}

// End to end: a server configured for 3-fragment responses answers a real
// client, which must reassemble every response from its fragments. The
// scatter-gather fragments share one body buffer on the wire, so this
// also exercises the composed frames through links and parsing.
TEST(ServerFragments, FragmentedResponsesReassembleAtClient) {
  sim::Simulator sim;
  phys::Topology topo{sim};

  ServerParams sp;
  sp.sid = ServerId{1};
  sp.workers = 4;
  sp.response_fragments = 3;
  Server& server = topo.add_node<Server>(
      sim, sp, std::make_shared<SyntheticService>(JitterModel{0.0, 15.0}),
      Rng{7});

  ClientParams cp;
  cp.client_id = 0;
  cp.mode = SendMode::kViaSwitch;  // single packet to `target`
  cp.target = server_ip(ServerId{1});
  cp.rate_rps = 200000.0;
  cp.num_filter_tables = 4;  // >= response fragment count
  cp.stop_at = SimTime::milliseconds(1);
  Client& client = topo.add_node<Client>(
      sim, cp, std::make_shared<FixedWorkload>(10.0), Rng{11});

  topo.connect(client, server);
  client.start();
  sim.run();

  const ClientStats& cs = client.stats();
  EXPECT_GT(cs.requests_sent, 50U);
  EXPECT_EQ(cs.completed, cs.requests_sent);
  EXPECT_EQ(cs.unmatched_responses, 0U);
  EXPECT_EQ(cs.redundant_responses, 0U);
  // Every completion took all three fragments: the server sent exactly
  // 3 frames per response.
  EXPECT_EQ(server.stats().responses_total, cs.completed);
}

TEST(ServerFragments, SingleFragmentResponseUnchanged) {
  Rig rig{params_with(2)};
  rig.inject(make_request(0, 5, 0, 0, 10000));
  rig.sim.run();
  const auto resp = rig.responses();
  ASSERT_EQ(resp.size(), 1U);
  EXPECT_EQ(resp[0].nc().frag_idx, 0);
  EXPECT_EQ(resp[0].nc().frag_count, 1);
}

}  // namespace
}  // namespace netclone::host
