#include "wire/bytes.hpp"

#include <gtest/gtest.h>

namespace netclone::wire {
namespace {

TEST(ByteWriter, BigEndianLayout) {
  Frame f;
  ByteWriter w{f};
  w.u16(0x1234);
  w.u32(0xAABBCCDD);
  ASSERT_EQ(f.size(), 6U);
  EXPECT_EQ(f[0], std::byte{0x12});
  EXPECT_EQ(f[1], std::byte{0x34});
  EXPECT_EQ(f[2], std::byte{0xAA});
  EXPECT_EQ(f[5], std::byte{0xDD});
}

TEST(ByteCodec, RoundTripAllWidths) {
  Frame f;
  ByteWriter w{f};
  w.u8(0xAB);
  w.u16(0xCDEF);
  w.u32(0x01234567);
  w.u64(0x89ABCDEF01234567ULL);
  w.i64(-42);

  ByteReader r{f};
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0xCDEF);
  EXPECT_EQ(r.u32(), 0x01234567U);
  EXPECT_EQ(r.u64(), 0x89ABCDEF01234567ULL);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_EQ(r.remaining(), 0U);
}

TEST(ByteReader, UnderrunThrows) {
  Frame f;
  ByteWriter w{f};
  w.u16(7);
  ByteReader r{f};
  EXPECT_EQ(r.u8(), 0);
  EXPECT_EQ(r.u8(), 7);
  EXPECT_THROW((void)r.u8(), CodecError);
}

TEST(ByteReader, SkipAndOffset) {
  Frame f;
  ByteWriter w{f};
  w.u32(0xDEADBEEF);
  ByteReader r{f};
  r.skip(2);
  EXPECT_EQ(r.offset(), 2U);
  EXPECT_EQ(r.u16(), 0xBEEF);
  EXPECT_THROW((void)r.skip(1), CodecError);
}

TEST(ByteReader, BytesCopiesExactly) {
  Frame f;
  ByteWriter w{f};
  w.u8(1);
  w.u8(2);
  w.u8(3);
  ByteReader r{f};
  std::array<std::byte, 2> out{};
  r.bytes(out);
  EXPECT_EQ(out[0], std::byte{1});
  EXPECT_EQ(out[1], std::byte{2});
  EXPECT_EQ(r.remaining(), 1U);
}

TEST(ByteReader, RestReturnsUnread) {
  Frame f;
  ByteWriter w{f};
  w.u32(0x01020304);
  ByteReader r{f};
  (void)r.u8();
  const auto rest = r.rest();
  ASSERT_EQ(rest.size(), 3U);
  EXPECT_EQ(rest[0], std::byte{2});
}

TEST(ByteWriter, ZerosAndBytes) {
  Frame f;
  ByteWriter w{f};
  w.zeros(3);
  const std::array<std::byte, 2> src{std::byte{9}, std::byte{8}};
  w.bytes(src);
  ASSERT_EQ(f.size(), 5U);
  EXPECT_EQ(f[2], std::byte{0});
  EXPECT_EQ(f[3], std::byte{9});
}

TEST(PokePeek, RoundTrip) {
  Frame f(4, std::byte{0});
  poke_u16(f, 1, 0xBEEF);
  EXPECT_EQ(peek_u16(f, 1), 0xBEEF);
  EXPECT_THROW((void)poke_u16(f, 3, 1), CodecError);
  EXPECT_THROW((void)peek_u16(f, 3), CodecError);
}

}  // namespace
}  // namespace netclone::wire
