// Robustness fuzzing: no input from the wire may crash the stack. Parsers
// must either succeed or throw CodecError; the switch program must handle
// any syntactically valid packet without violating pipeline constraints.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/netclone_program.hpp"
#include "host/addressing.hpp"
#include "test_util.hpp"
#include "wire/frame.hpp"

namespace netclone {
namespace {

using netclone::testing::make_request;
using netclone::testing::run_ingress;

TEST(FuzzParser, RandomBytesNeverCrash) {
  Rng rng{2024};
  for (int i = 0; i < 20000; ++i) {
    const auto len = static_cast<std::size_t>(rng.next_below(128));
    wire::Frame frame(len);
    for (auto& b : frame) {
      b = static_cast<std::byte>(rng.next_u64());
    }
    try {
      (void)wire::Packet::parse(frame);
    } catch (const wire::CodecError&) {
      // expected for malformed input
    }
  }
}

TEST(FuzzParser, MutatedValidFramesParseOrThrow) {
  Rng rng{7};
  const wire::Frame valid = make_request(0, 1, 0, 0).serialize();
  for (int i = 0; i < 20000; ++i) {
    wire::Frame frame = valid;
    // Flip 1-4 random bytes.
    const int flips = 1 + static_cast<int>(rng.next_below(4));
    for (int f = 0; f < flips; ++f) {
      const auto pos = static_cast<std::size_t>(
          rng.next_below(frame.size()));
      frame[pos] ^= static_cast<std::byte>(1 + rng.next_below(255));
    }
    try {
      const wire::Packet pkt = wire::Packet::parse(frame);
      // A successfully parsed packet must reserialize without throwing.
      (void)pkt.serialize();
    } catch (const wire::CodecError&) {
    }
  }
}

TEST(FuzzParser, TruncationsParseOrThrow) {
  const wire::Frame valid = make_request(0, 1, 0, 0).serialize();
  for (std::size_t len = 0; len <= valid.size(); ++len) {
    wire::Frame frame{valid.begin(),
                      valid.begin() + static_cast<std::ptrdiff_t>(len)};
    try {
      (void)wire::Packet::parse(frame);
    } catch (const wire::CodecError&) {
    }
  }
}

TEST(FuzzProgram, ArbitraryValidHeadersNeverViolatePipeline) {
  pisa::Pipeline pipeline;
  core::NetCloneConfig cfg;
  cfg.filter_slots = 64;
  core::NetCloneProgram program{pipeline, cfg};
  for (std::uint8_t i = 0; i < 4; ++i) {
    program.add_server(ServerId{i}, host::server_ip(ServerId{i}), 10 + i,
                       static_cast<std::uint16_t>(i + 1));
  }
  program.install_groups(core::build_group_pairs(4));
  program.add_route(host::client_ip(0), 20);

  Rng rng{99};
  for (int i = 0; i < 50000; ++i) {
    wire::Packet pkt = make_request(
        static_cast<std::uint16_t>(rng.next_below(8)),
        static_cast<std::uint32_t>(rng.next_u32()),
        static_cast<std::uint16_t>(rng.next_below(40)),  // some bad groups
        static_cast<std::uint8_t>(rng.next_below(8)));
    wire::NetCloneHeader& nc = pkt.nc();
    nc.type = static_cast<wire::MsgType>(1 + rng.next_below(3));
    nc.clo = static_cast<wire::CloneStatus>(rng.next_below(3));
    nc.sid = static_cast<std::uint8_t>(rng.next_below(256));
    nc.state = static_cast<std::uint16_t>(rng.next_below(65536));
    nc.switch_id = static_cast<std::uint8_t>(rng.next_below(4));
    nc.req_id = rng.next_u32();
    pkt.ip.dst = rng.bernoulli(0.5)
                     ? host::client_ip(0)
                     : wire::Ipv4Address{rng.next_u32()};
    // Only recirculate packets our own clone path could produce: the
    // loopback port is internal to the switch, unreachable from hosts.
    const bool recirculated =
        nc.is_request() && !nc.is_write() &&
        nc.clo == wire::CloneStatus::kClonedOriginal && rng.bernoulli(0.5);
    const auto md =
        run_ingress(program, pipeline, pkt, 0, recirculated);
    // Every packet gets a definite fate.
    EXPECT_TRUE(md.drop || md.egress_port.has_value() ||
                md.multicast_group.has_value());
  }
}

TEST(FuzzProgram, MultipacketVariantIsAlsoRobust) {
  pisa::Pipeline pipeline;
  core::NetCloneConfig cfg;
  cfg.filter_slots = 32;
  cfg.cloned_req_slots = 16;
  cfg.id_mode = core::RequestIdMode::kClientTuple;
  cfg.enable_multipacket = true;
  cfg.num_filter_tables = 4;
  core::NetCloneProgram program{pipeline, cfg};
  program.add_server(ServerId{0}, host::server_ip(ServerId{0}), 10, 1);
  program.add_server(ServerId{1}, host::server_ip(ServerId{1}), 11, 2);
  program.install_groups(core::build_group_pairs(2));
  program.add_route(host::client_ip(0), 20);

  Rng rng{123};
  for (int i = 0; i < 50000; ++i) {
    wire::Packet pkt = make_request(
        static_cast<std::uint16_t>(rng.next_below(4)),
        static_cast<std::uint32_t>(rng.next_below(64)),  // id collisions
        static_cast<std::uint16_t>(rng.next_below(3)),
        static_cast<std::uint8_t>(rng.next_below(6)));
    wire::NetCloneHeader& nc = pkt.nc();
    nc.type = static_cast<wire::MsgType>(1 + rng.next_below(3));
    nc.frag_count = static_cast<std::uint8_t>(1 + rng.next_below(4));
    nc.frag_idx = static_cast<std::uint8_t>(
        rng.next_below(nc.frag_count));
    nc.req_id = static_cast<std::uint32_t>(rng.next_below(64));
    if (nc.is_response()) {
      nc.clo = static_cast<wire::CloneStatus>(rng.next_below(3));
      pkt.ip.dst = host::client_ip(0);
    }
    const auto md = run_ingress(program, pipeline, pkt);
    EXPECT_TRUE(md.drop || md.egress_port.has_value() ||
                md.multicast_group.has_value());
  }
}

}  // namespace
}  // namespace netclone
