// Shared helpers for the test suite.
#pragma once

#include <cstdint>
#include <vector>

#include "host/addressing.hpp"
#include "phys/node.hpp"
#include "pisa/pipeline.hpp"
#include "pisa/program.hpp"
#include "wire/frame.hpp"
#include "wire/rpc.hpp"

namespace netclone::testing {

/// A topology endpoint that records every frame it receives.
class CaptureNode : public phys::Node {
 public:
  explicit CaptureNode(std::string name = "capture")
      : phys::Node(std::move(name)) {}

  void handle_frame(std::size_t port, wire::FrameHandle frame) override {
    // Linearize at the observation boundary so assertions compare plain
    // byte vectors regardless of how the frame was shared upstream.
    received.push_back({port, frame.to_frame()});
  }

  /// Transmits a frame out of a port (protected in Node).
  void transmit(std::size_t port, wire::FrameHandle frame) {
    send(port, std::move(frame));
  }

  [[nodiscard]] std::vector<wire::Packet> packets() const {
    std::vector<wire::Packet> out;
    out.reserve(received.size());
    for (const auto& [port, frame] : received) {
      out.push_back(wire::Packet::parse(frame));
    }
    return out;
  }

  struct Rx {
    std::size_t port;
    wire::Frame frame;
  };
  std::vector<Rx> received;
};

/// Builds a NetClone request packet the way a client would.
inline wire::Packet make_request(std::uint16_t client_id,
                                 std::uint32_t client_seq, std::uint16_t grp,
                                 std::uint8_t idx,
                                 std::uint32_t intrinsic_ns = 25000) {
  wire::NetCloneHeader nc;
  nc.type = wire::MsgType::kRequest;
  nc.clo = wire::CloneStatus::kNotCloned;
  nc.grp = grp;
  nc.idx = idx;
  nc.client_id = client_id;
  nc.client_seq = client_seq;
  wire::RpcRequest req;
  req.op = wire::RpcOp::kSynthetic;
  req.intrinsic_ns = intrinsic_ns;
  return wire::make_netclone_packet(
      wire::MacAddress::from_node(0x0200U + client_id),
      wire::MacAddress::broadcast(), host::client_ip(client_id),
      host::service_vip(),
      static_cast<std::uint16_t>(40000 + client_id), nc, req.to_frame());
}

/// Builds a NetClone response packet the way a server would.
inline wire::Packet make_response(ServerId sid, std::uint16_t qlen,
                                  const wire::Packet& request) {
  wire::Packet resp = request;
  resp.ip.src = host::server_ip(sid);
  resp.ip.dst = request.ip.src;
  resp.udp.src_port = wire::kNetClonePort;
  resp.udp.dst_port = request.udp.src_port;
  resp.nc().type = wire::MsgType::kResponse;
  resp.nc().sid = value_of(sid);
  resp.nc().state = qlen;
  resp.payload = wire::RpcResponse{}.to_frame();
  return resp;
}

/// Runs one packet through a switch program with fresh pass/metadata.
inline pisa::PacketMetadata run_ingress(pisa::SwitchProgram& program,
                                        pisa::Pipeline& pipeline,
                                        wire::Packet& pkt,
                                        std::size_t ingress_port = 0,
                                        bool recirculated = false) {
  pisa::PacketMetadata md;
  md.ingress_port = ingress_port;
  md.is_recirculated = recirculated;
  pisa::PipelinePass pass{pipeline};
  program.on_ingress(pkt, md, pass);
  return md;
}

}  // namespace netclone::testing
