#include "harness/multirack.hpp"

#include <gtest/gtest.h>

#include "host/service.hpp"
#include "host/workload.hpp"

namespace netclone::harness {
namespace {

MultiRackConfig small_config() {
  MultiRackConfig cfg;
  cfg.server_racks = 2;
  cfg.servers_per_rack = 2;
  cfg.workers = 4;
  cfg.num_clients = 1;
  cfg.factory = std::make_shared<host::ExponentialWorkload>(25.0);
  cfg.service =
      std::make_shared<host::SyntheticService>(host::JitterModel{0.01, 15});
  cfg.warmup = SimTime::milliseconds(1);
  cfg.measure = SimTime::milliseconds(6);
  cfg.offered_rps = 0.3 * cluster_capacity_rps({4, 4, 4, 4}, 25.0 * 1.14);
  return cfg;
}

TEST(MultiRackHarness, EndToEndConservation) {
  MultiRackExperiment experiment{small_config()};
  const ExperimentResult result = experiment.run();
  EXPECT_GT(result.requests_sent, 200U);
  std::uint64_t completed = 0;
  for (const host::Client* client : experiment.clients()) {
    completed += client->stats().completed;
  }
  EXPECT_EQ(completed, result.requests_sent);
  EXPECT_EQ(result.redundant_responses, 0U);
}

TEST(MultiRackHarness, CloningOnlyAtClientTor) {
  MultiRackExperiment experiment{small_config()};
  (void)experiment.run();
  EXPECT_GT(experiment.client_tor_program().stats().cloned_requests, 0U);
  for (std::size_t rack = 0; rack < 2; ++rack) {
    const auto& stats = experiment.server_tor_program(rack).stats();
    EXPECT_EQ(stats.cloned_requests, 0U) << rack;
    EXPECT_EQ(stats.requests, 0U) << rack;
    EXPECT_GT(stats.foreign_tor_packets, 0U) << rack;
  }
}

TEST(MultiRackHarness, CloningSpansRacks) {
  // Candidate pairs mix sids from both racks (sids 0-1 rack 0, 2-3 rack
  // 1); all four servers must see executed clones at low load.
  MultiRackConfig cfg = small_config();
  cfg.offered_rps = 30000.0;  // very low: near-100% cloning
  MultiRackExperiment experiment{cfg};
  (void)experiment.run();
  for (const host::Server* server : experiment.servers()) {
    EXPECT_GT(server->stats().completed, 0U)
        << value_of(server->sid());
  }
  EXPECT_GT(experiment.agg_program().stats().routed, 0U);
  EXPECT_EQ(experiment.agg_program().stats().no_route_drops, 0U);
}

TEST(MultiRackHarness, RejectsDegenerateConfigs) {
  MultiRackConfig cfg = small_config();
  cfg.server_racks = 1;
  cfg.servers_per_rack = 1;
  EXPECT_THROW(MultiRackExperiment{cfg}, CheckFailure);
  cfg = small_config();
  cfg.factory = nullptr;
  EXPECT_THROW(MultiRackExperiment{cfg}, CheckFailure);
}

}  // namespace
}  // namespace netclone::harness
