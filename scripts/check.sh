#!/usr/bin/env bash
# Full verification: build + tests, then the same suite under ASan and
# UBSan. This is the bar for merging changes to the wire/framebuf layer
# (refcounts, copy-on-write, in-place patching) and the zero-copy host
# data path (PayloadRef views pinning rx frames through the server
# queue, scatter-gather responses) — a leak or UB there is invisible to
# the functional tests. The sanitizer builds also compile
# the per-pass pipeline legality checks in (NETCLONE_PIPELINE_CHECKS
# AUTO), so the full run covers both check modes. The slow-labelled
# 100-combo chaos sweep (fault injection + invariant auditor +
# determinism digests) rides in every full suite, so it runs under both
# sanitizers before a merge.
#
# Usage: scripts/check.sh [--fast]
#   --fast: plain build + the tier-1 test suite, then the full chaos
#           sweep on the plain build (skips the sanitizer builds and
#           the other slow-labelled tests)
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS=$(nproc)
FAST=0
[[ "${1:-}" == "--fast" ]] && FAST=1

run_suite() {
  local name="$1" dir="$2" label="$3"
  shift 3
  echo "=== ${name}: configure ==="
  cmake -B "${dir}" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo "$@"
  echo "=== ${name}: build ==="
  cmake --build "${dir}" -j "${JOBS}"
  echo "=== ${name}: ctest ==="
  local ctest_args=(--test-dir "${dir}" -j "${JOBS}" --output-on-failure)
  [[ -n "${label}" ]] && ctest_args+=(-L "${label}")
  ctest "${ctest_args[@]}"
}

if [[ "${FAST}" == "1" ]]; then
  run_suite "plain (tier1)" build tier1
  echo "=== plain: full chaos sweep ==="
  ctest --test-dir build -j "${JOBS}" --output-on-failure -R ChaosSweepFull
  echo "=== fast checks passed (tier1 + chaos sweep; run without --fast before merging) ==="
  exit 0
fi

run_suite "plain" build ""
run_suite "asan" build-asan "" -DNETCLONE_SANITIZE=address
run_suite "ubsan" build-ubsan "" -DNETCLONE_SANITIZE=undefined

echo "=== all checks passed ==="
