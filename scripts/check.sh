#!/usr/bin/env bash
# Full verification: build + tests, then the same suite under ASan and
# UBSan. This is the bar for merging changes to the wire/framebuf layer
# (refcounts, copy-on-write, in-place patching) — a leak or UB there is
# invisible to the functional tests.
#
# Usage: scripts/check.sh [--fast]
#   --fast: skip the sanitizer builds (plain build + ctest only)
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS=$(nproc)
FAST=0
[[ "${1:-}" == "--fast" ]] && FAST=1

run_suite() {
  local name="$1" dir="$2"
  shift 2
  echo "=== ${name}: configure ==="
  cmake -B "${dir}" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo "$@"
  echo "=== ${name}: build ==="
  cmake --build "${dir}" -j "${JOBS}"
  echo "=== ${name}: ctest ==="
  ctest --test-dir "${dir}" -j "${JOBS}" --output-on-failure
}

run_suite "plain" build

if [[ "${FAST}" == "0" ]]; then
  run_suite "asan" build-asan -DNETCLONE_SANITIZE=address
  run_suite "ubsan" build-ubsan -DNETCLONE_SANITIZE=undefined
fi

echo "=== all checks passed ==="
