#!/usr/bin/env bash
# Full verification: build + tests, then the same suite under ASan and
# UBSan. This is the bar for merging changes to the wire/framebuf layer
# (refcounts, copy-on-write, in-place patching) and the zero-copy host
# data path (PayloadRef views pinning rx frames through the server
# queue, scatter-gather responses) — a leak or UB there is invisible to
# the functional tests. The sanitizer builds also compile
# the per-pass pipeline legality checks in (NETCLONE_PIPELINE_CHECKS
# AUTO), so the full run covers both check modes. The slow-labelled
# 100-combo chaos sweep (fault injection + invariant auditor +
# determinism digests) rides in every full suite, so it runs under both
# sanitizers before a merge.
#
# Every configure/build/test step reports which step failed and stops
# there; nothing downstream runs on a broken build.
#
# Usage: scripts/check.sh [--fast] [--tsan] [--shards N]
#   --fast:     plain build + the tier-1 test suite, then the full chaos
#               sweep on the plain build (skips the sanitizer builds and
#               the other slow-labelled tests)
#   --tsan:     ThreadSanitizer lane only: build with
#               NETCLONE_SANITIZE=thread, run the tier-1 suite, then the
#               sharded-engine tests with 2 and 4 shards and enough
#               worker threads that races actually interleave. This is
#               the bar for merging changes to the sharded engine
#               (mailboxes, safe-clocks, the late-freeze protocol).
#   --shards N: run every ctest invocation with NETCLONE_SHARDS=N, i.e.
#               push the whole suite through the sharded engine.
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS=$(nproc)
FAST=0
TSAN=0
SHARDS=""
while [[ $# -gt 0 ]]; do
  case "$1" in
    --fast) FAST=1 ;;
    --tsan) TSAN=1 ;;
    --shards)
      SHARDS="${2:?--shards needs a value}"
      shift
      ;;
    *)
      echo "check.sh: unknown option: $1" >&2
      exit 2
      ;;
  esac
  shift
done

fail() {
  echo "=== CHECK FAILED: $* ===" >&2
  exit 1
}

# step <description> <command...>: runs the command, failing loudly with
# the step's name so a broken configure is never mistaken for a passing
# build (or silently shadowed by a later step).
step() {
  local what="$1"
  shift
  echo "=== ${what} ==="
  "$@" || fail "${what}"
}

shard_env=()
[[ -n "${SHARDS}" ]] && shard_env+=("NETCLONE_SHARDS=${SHARDS}")

run_suite() {
  local name="$1" dir="$2" label="$3"
  shift 3
  step "${name}: configure" \
    cmake -B "${dir}" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo "$@"
  step "${name}: build" cmake --build "${dir}" -j "${JOBS}"
  local ctest_args=()
  [[ -n "${label}" ]] && ctest_args+=(-L "${label}")
  step "${name}: ctest${SHARDS:+ (NETCLONE_SHARDS=${SHARDS})}" \
    env ${shard_env[@]+"${shard_env[@]}"} \
    ctest --test-dir "${dir}" -j "${JOBS}" --output-on-failure \
    ${ctest_args[@]+"${ctest_args[@]}"}
}

if [[ "${TSAN}" == "1" ]]; then
  run_suite "tsan (tier1)" build-tsan tier1 -DNETCLONE_SANITIZE=thread
  # The determinism suite again, with worker threads forced on so the
  # cross-shard protocol actually runs concurrently even on small
  # machines (thread count alone must never change results).
  for n in 2 4; do
    step "tsan: sharded-engine tests (${n} shards)" \
      env NETCLONE_SHARDS="${n}" NETCLONE_SHARD_THREADS="${n}" \
      ctest --test-dir build-tsan -j "${JOBS}" --output-on-failure \
      -R ShardedEngine
  done
  echo "=== tsan checks passed ==="
  exit 0
fi

if [[ "${FAST}" == "1" ]]; then
  run_suite "plain (tier1)" build tier1
  step "plain: full chaos sweep" \
    env ${shard_env[@]+"${shard_env[@]}"} \
    ctest --test-dir build -j "${JOBS}" --output-on-failure -R ChaosSweepFull
  echo "=== fast checks passed (tier1 + chaos sweep; run without --fast before merging) ==="
  exit 0
fi

run_suite "plain" build ""
run_suite "asan" build-asan "" -DNETCLONE_SANITIZE=address
run_suite "ubsan" build-ubsan "" -DNETCLONE_SANITIZE=undefined

echo "=== all checks passed ==="
