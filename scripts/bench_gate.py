#!/usr/bin/env python3
"""Benchmark regression gate.

Runs the repo's microbenchmarks (bench_sim_engine, bench_packet_path,
bench_pisa_pipeline, bench_host_path, bench_fig16_failure,
bench_parallel_engine, bench_multirack), compares the results against
the committed BENCH_*.json baselines, and fails loudly on regression.

What is gated, and how:

  * Speedup ratios. Each bench records a fast/legacy pair measured in the
    same process on the same machine (e.g. request_pass_fast vs
    request_pass_legacy); the ratio between them is machine-independent,
    so it transfers from the machine that recorded the baseline to
    whichever runner executes the gate. A ratio may degrade by at most
    --tolerance (default 15%) relative to the baseline ratio.
  * Exact digests. The simulation is deterministic, so digest keys
    (fig7_completed, fig7_p99_ns, pipeline_checks) must match the
    baseline bit for bit on any machine.
  * Absolute rates and wall-clock seconds are reported for information
    only — they do not transfer across machines.

A delta table goes to stdout and, when $GITHUB_STEP_SUMMARY is set, to
the job summary as markdown.

Usage:
  bench_gate.py [--build-dir build] [--baseline-dir .]
                [--tolerance 0.15] [--update]

--update rewrites the committed baselines from the current run (use on
the machine that owns the baselines, then commit the diff).
"""

import argparse
import json
import os
import shutil
import subprocess
import sys

BENCHES = ["sim_engine", "packet_path", "pisa_pipeline", "host_path",
           "fig16", "parallel_engine", "multirack"]

# Bench names whose binary is not simply bench_<name>.
BINARIES = {"fig16": "bench_fig16_failure"}

# Deterministic simulation digests: must match the baseline exactly.
# The fig16 keys come from that bench's fault-free control run, so they
# are bit-exact on any machine; its faulted-run counters (recovery time,
# lost/duplicated requests) are reported as info rows. The
# parallel_engine bench re-derives fig7_completed / fig7_p99_ns /
# fig7_executed_events from the 4-shard run, so these keys double as
# the sharded-determinism gate.
EXACT_KEYS = {"fig7_completed", "fig7_p99_ns", "fig7_executed_events",
              "pipeline_checks",
              "fig16_nofault_completed", "fig16_nofault_digest",
              "multirack_completed", "multirack_p99_ns",
              "multirack_executed_events", "multirack_digest",
              "multirack_cloned_requests", "multirack_failover_digest"}

# Absolute minimum ratios, gated against the CURRENT run (both sides of
# each ratio are measured in the same process on the same machine, so
# the value transfers; the committed baseline is informational). Each
# entry is key -> (minimum, hw_threads the runner needs for the number
# to mean anything). On a starved runner the check is SKIPPED — loudly,
# as a table row — instead of failing on noise.
MIN_RATIOS = {
    "parallel_scaling_shard4_over_shard1": (2.0, 4),
    "multirack_scaling_shard4_over_shard1": (2.0, 4),
}

# Informational keys that are neither ratios nor digests.
SKIP_KEYS = {"bench", "unit"}


def find_binary(build_dir, name):
    for candidate in (
        os.path.join(build_dir, "bench", name),
        os.path.join(build_dir, name),
    ):
        if os.path.isfile(candidate) and os.access(candidate, os.X_OK):
            return candidate
    return None


def run_bench(binary, out_path):
    print(f"running {binary} ...", flush=True)
    subprocess.run([binary, out_path], check=True, stdout=subprocess.DEVNULL)
    with open(out_path, encoding="utf-8") as f:
        return json.load(f)


def ratio_pairs(data):
    """Yields (label, fast_key, legacy_key, lower_is_better)."""
    for key in sorted(data):
        if not key.endswith("_legacy"):
            continue
        base = key[: -len("_legacy")]
        fast_key = None
        if base in data:
            fast_key = base
        elif base + "_fast" in data:
            fast_key = base + "_fast"
        elif base.endswith("_fast") and base in data:
            fast_key = base
        if fast_key is None:
            continue
        lower_is_better = "seconds" in base or "wall" in base
        yield base.removesuffix("_fast"), fast_key, key, lower_is_better


def speedup(data, fast_key, legacy_key, lower_is_better):
    fast = float(data[fast_key])
    legacy = float(data[legacy_key])
    if lower_is_better:
        return legacy / fast if fast > 0 else 0.0
    return fast / legacy if legacy > 0 else 0.0


def compare(name, baseline, current, tolerance):
    """Returns (rows, failures) for one bench's delta table."""
    rows = []
    failures = []
    paired = set()
    for label, fast_key, legacy_key, lower in ratio_pairs(baseline):
        paired.update((fast_key, legacy_key))
        if fast_key not in current or legacy_key not in current:
            failures.append(f"{name}: key pair {label} missing from run")
            continue
        base_ratio = speedup(baseline, fast_key, legacy_key, lower)
        cur_ratio = speedup(current, fast_key, legacy_key, lower)
        delta = (cur_ratio - base_ratio) / base_ratio if base_ratio else 0.0
        # Wall-clock ratios are too noisy to gate on shared runners; rate
        # ratios are stable and enforced.
        gated = not lower
        ok = (not gated) or cur_ratio >= base_ratio * (1.0 - tolerance)
        status = "info" if not gated else ("OK" if ok else "FAIL")
        if gated and not ok:
            failures.append(
                f"{name}: {label} speedup {cur_ratio:.2f}x fell below "
                f"baseline {base_ratio:.2f}x minus {tolerance:.0%} tolerance"
            )
        rows.append(
            (
                name,
                f"{label} speedup",
                f"{base_ratio:.2f}x",
                f"{cur_ratio:.2f}x",
                f"{delta:+.1%}",
                status,
            )
        )
    for key in sorted(baseline):
        if key in SKIP_KEYS or key in paired:
            continue
        if key in MIN_RATIOS:
            minimum, need_threads = MIN_RATIOS[key]
            if key not in current:
                failures.append(f"{name}: key {key} missing from run")
                continue
            cur_value = float(current[key])
            hw = int(float(current.get("hw_threads", 0)))
            if hw < need_threads:
                # Starved runner: the ratio is meaningless, so say so
                # in the table instead of failing (or silently passing).
                rows.append(
                    (
                        name,
                        key,
                        f">={minimum:.2f}x",
                        f"{cur_value:.2f}x",
                        f"hw_threads={hw}",
                        f"SKIP (needs {need_threads} hw threads)",
                    )
                )
                continue
            ok = cur_value >= minimum
            if not ok:
                failures.append(
                    f"{name}: {key} = {cur_value:.2f}x, below the "
                    f"required minimum {minimum:.2f}x"
                )
            rows.append(
                (
                    name,
                    key,
                    f">={minimum:.2f}x",
                    f"{cur_value:.2f}x",
                    f"hw_threads={hw}",
                    "OK" if ok else "FAIL",
                )
            )
            continue
        if key in EXACT_KEYS:
            base_value = baseline[key]
            cur_value = current.get(key)
            ok = cur_value == base_value
            if not ok:
                failures.append(
                    f"{name}: digest {key} = {cur_value!r}, "
                    f"baseline {base_value!r} (must match exactly)"
                )
            rows.append(
                (
                    name,
                    key,
                    str(base_value),
                    str(cur_value),
                    "exact",
                    "OK" if ok else "FAIL",
                )
            )
        elif isinstance(baseline[key], (int, float)) and key in current:
            base_value = float(baseline[key])
            cur_value = float(current[key])
            delta = (
                (cur_value - base_value) / base_value if base_value else 0.0
            )
            rows.append(
                (name, key, f"{base_value:g}", f"{cur_value:g}",
                 f"{delta:+.1%}", "info")
            )
    return rows, failures


def format_table(rows):
    header = ("bench", "metric", "baseline", "current", "delta", "status")
    widths = [
        max(len(str(row[i])) for row in rows + [header])
        for i in range(len(header))
    ]
    lines = []
    for row in [header] + rows:
        lines.append(
            "  ".join(str(cell).ljust(w) for cell, w in zip(row, widths))
        )
    return "\n".join(lines)


def format_markdown(rows):
    lines = [
        "| bench | metric | baseline | current | delta | status |",
        "| --- | --- | --- | --- | --- | --- |",
    ]
    for row in rows:
        status = row[5]
        badge = {"OK": "✅ OK", "FAIL": "❌ FAIL"}.get(status, status)
        lines.append("| " + " | ".join(list(row[:5]) + [badge]) + " |")
    return "\n".join(lines)


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--build-dir", default="build")
    parser.add_argument("--baseline-dir", default=".")
    parser.add_argument("--tolerance", type=float, default=0.15)
    parser.add_argument("--update", action="store_true",
                        help="rewrite baselines from this run")
    args = parser.parse_args()

    out_dir = os.path.join(args.build_dir, "bench_gate")
    os.makedirs(out_dir, exist_ok=True)

    all_rows = []
    failures = []
    for bench in BENCHES:
        binary_name = BINARIES.get(bench, f"bench_{bench}")
        binary = find_binary(args.build_dir, binary_name)
        if binary is None:
            failures.append(f"{binary_name}: binary not found under "
                            f"{args.build_dir}")
            continue
        out_path = os.path.join(out_dir, f"BENCH_{bench}.json")
        current = run_bench(binary, out_path)
        baseline_path = os.path.join(
            args.baseline_dir, f"BENCH_{bench}.json"
        )
        if args.update:
            shutil.copyfile(out_path, baseline_path)
            print(f"updated {baseline_path}")
            continue
        if not os.path.isfile(baseline_path):
            failures.append(f"bench_{bench}: no baseline {baseline_path}")
            continue
        with open(baseline_path, encoding="utf-8") as f:
            baseline = json.load(f)
        rows, errs = compare(bench, baseline, current, args.tolerance)
        all_rows.extend(rows)
        failures.extend(errs)

    if args.update and not failures:
        return 0

    if all_rows:
        print()
        print(format_table(all_rows))
    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary_path and all_rows:
        with open(summary_path, "a", encoding="utf-8") as f:
            f.write("## Benchmark gate\n\n")
            f.write(format_markdown(all_rows))
            f.write("\n")
            if failures:
                f.write("\n**Failures:**\n")
                for failure in failures:
                    f.write(f"- {failure}\n")

    if failures:
        print("\nBENCH GATE FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print(f"\nbench gate passed (tolerance {args.tolerance:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
