#!/usr/bin/env python3
"""Deterministic style gate for src/, tests/, and bench/.

Enforces the mechanical invariants of the repo's .clang-format profile
(Google style, 79-column limit) that do not depend on having a specific
clang-format version installed:

  * no line longer than 79 columns
  * no tab characters
  * no trailing whitespace
  * LF line endings, file ends with exactly one newline

clang-format itself is advisory (run it locally if you have it); this
check is what CI enforces, because byte-exact clang-format output is not
stable across the versions developers and runners have installed.

Usage: format_check.py [paths...]   (default: src tests bench)
Exits non-zero listing every violation.
"""

import sys
from pathlib import Path

COLUMN_LIMIT = 79
EXTENSIONS = {".cpp", ".hpp", ".h", ".cc"}


def check_file(path):
    violations = []
    data = path.read_bytes()
    if b"\r" in data:
        violations.append(f"{path}: CRLF line endings")
    if data and not data.endswith(b"\n"):
        violations.append(f"{path}: missing final newline")
    if data.endswith(b"\n\n"):
        violations.append(f"{path}: trailing blank lines at end of file")
    text = data.decode("utf-8", errors="replace")
    for number, line in enumerate(text.splitlines(), start=1):
        if "\t" in line:
            violations.append(f"{path}:{number}: tab character")
        if line != line.rstrip():
            violations.append(f"{path}:{number}: trailing whitespace")
        if len(line) > COLUMN_LIMIT:
            violations.append(
                f"{path}:{number}: line is {len(line)} columns "
                f"(limit {COLUMN_LIMIT})"
            )
    return violations


def main():
    roots = sys.argv[1:] or ["src", "tests", "bench"]
    files = []
    for root in roots:
        root_path = Path(root)
        if root_path.is_file():
            files.append(root_path)
        else:
            files.extend(
                p
                for p in sorted(root_path.rglob("*"))
                if p.suffix in EXTENSIONS
            )
    violations = []
    for path in files:
        violations.extend(check_file(path))
    if violations:
        print(f"format check failed ({len(violations)} violations):")
        for violation in violations:
            print(f"  {violation}")
        return 1
    print(f"format check passed ({len(files)} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
