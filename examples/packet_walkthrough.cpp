// Didactic walkthrough of the NetClone data plane: a two-server rack, a
// handful of requests pushed through the real switch pipeline, every frame
// captured to a pcap file (open it in Wireshark: UDP port 9393), and the
// life of a cloned request narrated step by step from the switch counters.
//
//   ./build/examples/packet_walkthrough [output.pcap]
#include <cstdio>
#include <memory>

#include "sim/simulator.hpp"
#include "core/netclone_program.hpp"
#include "host/client.hpp"
#include "host/server.hpp"
#include "host/service.hpp"
#include "host/workload.hpp"
#include "phys/topology.hpp"
#include "pisa/audit.hpp"
#include "pisa/switch_device.hpp"
#include "wire/pcap.hpp"

using namespace netclone;

namespace {

/// A ToR switch with a wiretap: every frame arriving at ingress — requests,
/// responses, nothing recirculated (that never touches a wire) — lands in
/// the pcap before normal processing.
class TapSwitch : public pisa::SwitchDevice {
 public:
  TapSwitch(sim::Simulator& simulator, std::string name,
            wire::PcapWriter* pcap)
      : pisa::SwitchDevice(simulator, std::move(name)),
        sim_(simulator),
        pcap_(pcap) {}

  void handle_frame(std::size_t port, wire::FrameHandle frame) override {
    if (pcap_ != nullptr) {
      // Linearize for the pcap: the capture is an oracle boundary and must
      // see the exact wire bytes whether or not the frame is shared.
      pcap_->write(sim_.now(), frame.to_frame());
    }
    pisa::SwitchDevice::handle_frame(port, std::move(frame));
  }

 private:
  sim::Simulator& sim_;
  wire::PcapWriter* pcap_;
};

}  // namespace

int main(int argc, char** argv) {
  const std::string pcap_path = argc > 1 ? argv[1] : "netclone.pcap";
  wire::PcapWriter pcap{pcap_path};

  sim::Simulator sim;
  phys::Topology topo{sim};

  auto& tor = topo.add_node<TapSwitch>(sim, "tor", &pcap);
  const std::size_t recirc = tor.add_internal_port();
  tor.set_loopback_port(recirc);

  core::NetCloneConfig nc_cfg;
  auto program =
      std::make_shared<core::NetCloneProgram>(tor.pipeline(), nc_cfg);
  tor.load_program(program);

  auto service =
      std::make_shared<host::SyntheticService>(host::JitterModel{0.0, 15});
  for (std::uint8_t i = 0; i < 2; ++i) {
    host::ServerParams sp;
    sp.sid = ServerId{i};
    sp.workers = 2;
    auto& server = topo.add_node<host::Server>(sim, sp, service, Rng{i});
    const auto ports = topo.connect(server, tor);
    program->add_server(ServerId{i}, host::server_ip(ServerId{i}),
                        ports.port_on_b, static_cast<std::uint16_t>(i + 1));
    tor.configure_multicast_group(static_cast<std::uint16_t>(i + 1),
                                  {ports.port_on_b, recirc});
  }
  program->install_groups(core::build_group_pairs(2));

  host::ClientParams cp;
  cp.client_id = 0;
  cp.mode = host::SendMode::kViaSwitch;
  cp.target = host::service_vip();
  cp.rate_rps = 100000.0;
  cp.num_groups = 2;
  cp.num_filter_tables = 2;
  cp.stop_at = SimTime::microseconds(100);  // ~10 requests
  auto& client = topo.add_node<host::Client>(
      sim, cp, std::make_shared<host::ExponentialWorkload>(25.0), Rng{7});
  const auto client_ports = topo.connect(client, tor);
  program->add_route(host::client_ip(0), client_ports.port_on_b);

  std::printf("walkthrough: 1 client, 2 servers, NetClone ToR\n\n");
  client.start();
  sim.run();

  const auto& ps = program->stats();
  const auto& ss = tor.stats();
  std::printf("life of the workload, from the switch's perspective:\n");
  std::printf("  1. fresh requests seen at ingress ............ %llu\n",
              static_cast<unsigned long long>(ps.requests));
  std::printf("  2. cloned (both candidates tracked idle) ..... %llu\n",
              static_cast<unsigned long long>(ps.cloned_requests));
  std::printf("  3. clone copies recirculated via loopback .... %llu\n",
              static_cast<unsigned long long>(ps.recirculated_clones));
  std::printf("  4. responses seen (originals + clones) ....... %llu\n",
              static_cast<unsigned long long>(ps.responses));
  std::printf("  5. fingerprints stored by faster responses ... %llu\n",
              static_cast<unsigned long long>(ps.fingerprints_stored));
  std::printf("  6. slower duplicates dropped by FilterT ...... %llu\n",
              static_cast<unsigned long long>(ps.filtered_responses));
  std::printf("  7. multicast copies emitted by the PRE ....... %llu\n",
              static_cast<unsigned long long>(ss.multicast_copies));
  std::printf("\nclient: sent %llu, completed %llu, redundant %llu "
              "(filtering kept duplicates away)\n",
              static_cast<unsigned long long>(client.stats().requests_sent),
              static_cast<unsigned long long>(client.stats().completed),
              static_cast<unsigned long long>(
                  client.stats().redundant_responses));
  std::printf("\nwrote %llu frames to %s (Wireshark: udp.port == %u)\n",
              static_cast<unsigned long long>(pcap.frames_written()),
              pcap_path.c_str(), wire::kNetClonePort);
  std::printf("\nswitch resources:\n%s",
              pisa::audit(tor.pipeline()).to_string().c_str());
  return 0;
}
