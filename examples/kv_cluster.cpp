// Replicated key-value cluster (the paper's Redis scenario, §5.5): six
// read-replicas behind a NetClone ToR switch, Zipf-0.99 GET/SCAN traffic.
// Shows how the public API composes: a shared KvStore, KvService on the
// servers, KvRequestFactory on the clients, and a load sweep comparing the
// no-cloning baseline with NetClone.
//
//   ./build/examples/kv_cluster
#include <cstdio>
#include <memory>

#include "harness/experiment.hpp"
#include "harness/report.hpp"
#include "kv/kv_workload.hpp"

using namespace netclone;

int main() {
  // 100k objects keeps the demo snappy; the Fig. 11 bench uses 1M.
  auto store = std::make_shared<kv::KvStore>(100000);
  kv::populate(*store, 100000);
  std::printf("populated store: %zu objects (16 B keys, 64 B values)\n",
              store->size());

  // Sanity: point reads and range digests work before we simulate.
  const auto value = store->get(kv::key_for_index(42));
  std::printf("GET k42 -> %.*s...\n", 8,
              value ? value->data() : "<missing>");

  kv::KvMix mix;
  mix.get_fraction = 0.99;  // the paper's 99%-GET, 1%-SCAN mix
  mix.num_keys = store->size();
  const kv::KvCostProfile profile = kv::redis_profile();
  auto factory = std::make_shared<kv::KvRequestFactory>(mix, profile);

  harness::ClusterConfig cfg;
  cfg.server_workers.assign(6, 8);  // 6 replicas x 8 worker threads
  cfg.factory = factory;
  cfg.service = std::make_shared<kv::KvService>(store, profile,
                                                host::JitterModel{0.01, 15});
  cfg.warmup = SimTime::milliseconds(4);
  cfg.measure = SimTime::milliseconds(20);

  const double capacity = harness::cluster_capacity_rps(
      cfg.server_workers, factory->mean_intrinsic_us() * 1.14);
  std::printf("cluster capacity ~= %.0f KRPS for %s\n\n", capacity / 1e3,
              factory->label().c_str());

  for (const harness::Scheme scheme :
       {harness::Scheme::kBaseline, harness::Scheme::kNetClone}) {
    cfg.scheme = scheme;
    const auto points =
        harness::run_sweep(cfg, capacity, {0.2, 0.5, 0.8});
    harness::print_series(std::string{factory->label()} + " — " +
                              harness::scheme_name(scheme),
                          points);
  }

  std::printf(
      "\nNote: NetClone clones reads only; writes (RpcOp::kSet) go through"
      "\nuncloned since write coordination belongs to the replication"
      "\nprotocol (paper §5.5).\n");
  return 0;
}
