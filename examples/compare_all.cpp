// Head-to-head of every implemented scheme on one workload — the
// 30-second version of the paper's whole evaluation, plus a per-server
// breakdown showing where the queueing actually happens.
//
//   ./build/examples/compare_all [load_fraction]
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "harness/experiment.hpp"
#include "harness/report.hpp"
#include "host/service.hpp"
#include "host/workload.hpp"

using namespace netclone;

int main(int argc, char** argv) {
  const double load = argc > 1 ? std::atof(argv[1]) : 0.5;

  harness::ClusterConfig cfg;
  cfg.server_workers = {16, 16, 16, 16, 16, 16};
  cfg.factory = std::make_shared<host::ExponentialWorkload>(25.0);
  cfg.service = std::make_shared<host::SyntheticService>(
      host::JitterModel{0.01, 15.0, 0.08});
  cfg.warmup = SimTime::milliseconds(5);
  cfg.measure = SimTime::milliseconds(25);
  const double capacity =
      harness::cluster_capacity_rps(cfg.server_workers, 25.0 * 1.14);
  cfg.offered_rps = load * capacity;

  std::printf("all schemes, Exp(25) p=0.01, 6 servers x 16 workers, "
              "offered %.0f%% of %.0f KRPS\n\n",
              load * 100.0, capacity / 1e3);
  std::printf("  %-19s %10s %9s %9s %10s %10s %10s %10s %11s\n", "scheme",
              "KRPS", "p50(us)", "p99(us)", "waitP99", "svcP99", "cloned",
              "filtered", "redundant");

  for (const harness::Scheme scheme :
       {harness::Scheme::kBaseline, harness::Scheme::kCClone,
        harness::Scheme::kLaedge, harness::Scheme::kNetClone,
        harness::Scheme::kNetCloneNoFilter, harness::Scheme::kRackSched,
        harness::Scheme::kNetCloneRackSched}) {
    cfg.scheme = scheme;
    harness::Experiment experiment{cfg};
    const harness::ExperimentResult r = experiment.run();
    std::printf(
        "  %-19s %10.1f %9.1f %9.1f %10.1f %10.1f %10llu %10llu %11llu\n",
        harness::scheme_name(scheme), r.achieved_rps / 1e3, r.p50.us(),
        r.p99.us(), r.server_wait_p99.us(), r.server_service_p99.us(),
        static_cast<unsigned long long>(r.cloned_requests),
        static_cast<unsigned long long>(r.filtered_responses),
        static_cast<unsigned long long>(r.redundant_responses));

    if (scheme == harness::Scheme::kNetClone) {
      std::printf("      per-server view (NetClone):\n");
      for (const host::Server* server : experiment.servers()) {
        const auto& ss = server->stats();
        std::printf(
            "        srv%u: completed %7llu  stale-clone drops %6llu  "
            "queue-wait p99 %7.1f us  max depth %zu\n",
            value_of(server->sid()),
            static_cast<unsigned long long>(ss.completed),
            static_cast<unsigned long long>(ss.dropped_stale_clones),
            ss.queue_wait.p99().us(), ss.max_queue_depth);
      }
    }
  }
  std::printf("\n(LAEDGE is expected to collapse here: this offered load "
              "is far beyond one coordinator's CPU.)\n");
  return 0;
}
