// Switch-failure drill (paper §3.6 / Fig. 16): run a NetClone rack, kill
// the ToR mid-run, bring it back, and print an ASCII throughput timeline
// demonstrating that only soft state is lost — no reconciliation needed.
//
//   ./build/examples/failover_demo
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>

#include "harness/experiment.hpp"
#include "host/service.hpp"
#include "host/workload.hpp"

using namespace netclone;

int main() {
  harness::ClusterConfig cfg;
  cfg.scheme = harness::Scheme::kNetClone;
  cfg.server_workers.assign(4, 4);
  cfg.factory = std::make_shared<host::ExponentialWorkload>(100.0);
  cfg.service =
      std::make_shared<host::SyntheticService>(host::JitterModel{0.01, 15});
  cfg.warmup = SimTime::zero();
  cfg.measure = SimTime::seconds(12);
  const double capacity =
      harness::cluster_capacity_rps(cfg.server_workers, 100.0 * 1.14);
  cfg.offered_rps = 0.5 * capacity;

  harness::Experiment experiment{cfg};
  std::printf("NetClone rack at 50%% load; ToR fails at t=4s, "
              "recovers at t=6s\n\n");
  const auto bins = experiment.run_timeline(
      SimTime::seconds(12), SimTime::milliseconds(500), SimTime::seconds(4),
      SimTime::seconds(6));

  const std::uint64_t peak = *std::max_element(bins.begin(), bins.end());
  std::printf("  t(s)   KRPS  |timeline (each # ~ %.0f KRPS)\n",
              static_cast<double>(peak) / 40.0 / 1e3 * 2.0);
  for (std::size_t i = 0; i < bins.size(); ++i) {
    const auto width = static_cast<std::size_t>(
        40.0 * static_cast<double>(bins[i]) /
        static_cast<double>(std::max<std::uint64_t>(peak, 1)));
    std::printf("  %4.1f %6.1f  |%s\n",
                static_cast<double>(i + 1) * 0.5,
                static_cast<double>(bins[i]) / 1e3 * 2.0,
                std::string(width, '#').c_str());
  }

  const auto& ps = experiment.netclone_program()->stats();
  std::printf("\nafter recovery: requests %llu, cloned %llu, "
              "filtered %llu — cloning resumed from wiped soft state\n",
              static_cast<unsigned long long>(ps.requests),
              static_cast<unsigned long long>(ps.cloned_requests),
              static_cast<unsigned long long>(ps.filtered_responses));
  std::printf("(the request-id sequence restarted from zero; server "
              "states repopulated from the first responses — §3.6)\n");
  return 0;
}
