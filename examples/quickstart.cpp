// Quickstart: build a simulated rack, run NetClone against the baseline on
// the paper's default workload (Exp(25), p=0.01), and print tail latency,
// cloning activity, and the switch resource audit.
//
//   ./build/examples/quickstart
#include <cstdio>
#include <memory>

#include "harness/experiment.hpp"
#include "harness/report.hpp"
#include "host/service.hpp"
#include "host/workload.hpp"
#include "pisa/audit.hpp"

using namespace netclone;

int main() {
  // The paper's default rack: 2 clients, 6 workers x 16 threads, one
  // Tofino-class ToR switch.
  harness::ClusterConfig cfg;
  cfg.server_workers = {16, 16, 16, 16, 16, 16};
  cfg.factory = std::make_shared<host::ExponentialWorkload>(25.0);
  const host::JitterModel jitter{0.01, 15.0};
  cfg.service = std::make_shared<host::SyntheticService>(jitter);
  cfg.warmup = SimTime::milliseconds(5);
  cfg.measure = SimTime::milliseconds(40);

  const double capacity = harness::cluster_capacity_rps(
      cfg.server_workers, 25.0 * jitter.mean_inflation());
  cfg.offered_rps = 0.5 * capacity;  // a mid-load point

  std::printf("cluster capacity ~= %.0f KRPS, offering 50%%\n",
              capacity / 1e3);

  for (const harness::Scheme scheme :
       {harness::Scheme::kBaseline, harness::Scheme::kNetClone}) {
    cfg.scheme = scheme;
    harness::Experiment experiment{cfg};
    const harness::ExperimentResult r = experiment.run();
    std::printf(
        "%-9s achieved %7.1f KRPS  p50 %6.1f us  p99 %7.1f us  "
        "cloned %llu  filtered %llu  stale-clone-drops %llu\n",
        harness::scheme_name(scheme), r.achieved_rps / 1e3, r.p50.us(),
        r.p99.us(), static_cast<unsigned long long>(r.cloned_requests),
        static_cast<unsigned long long>(r.filtered_responses),
        static_cast<unsigned long long>(r.dropped_stale_clones));

    if (scheme == harness::Scheme::kNetClone) {
      std::printf("\nswitch resource audit (cf. paper section 4.1):\n%s",
                  pisa::audit(experiment.tor().pipeline()).to_string()
                      .c_str());
    }
  }
  return 0;
}
