// Server maintenance drill (§3.6 "Server failures"): a rack is running,
// one worker is drained for maintenance, the control plane removes it from
// the candidate groups, and the clients are told the shrunken group count.
// NetClone keeps serving — only the removed server's share of capacity is
// lost and cloning continues over the survivors.
//
//   ./build/examples/server_maintenance
#include <cstdio>
#include <memory>

#include "sim/simulator.hpp"
#include "core/controller.hpp"
#include "host/client.hpp"
#include "host/server.hpp"
#include "host/service.hpp"
#include "host/workload.hpp"
#include "phys/topology.hpp"
#include "pisa/switch_device.hpp"

using namespace netclone;

int main() {
  sim::Simulator sim;
  phys::Topology topo{sim};

  auto& tor = topo.add_node<pisa::SwitchDevice>(sim, "tor");
  const std::size_t recirc = tor.add_internal_port();
  tor.set_loopback_port(recirc);
  auto program = std::make_shared<core::NetCloneProgram>(
      tor.pipeline(), core::NetCloneConfig{});
  tor.load_program(program);
  core::Controller controller{*program, tor, recirc};

  auto service = std::make_shared<host::SyntheticService>(
      host::JitterModel{0.01, 15.0, 0.08});
  std::vector<host::Server*> servers;
  for (std::uint8_t i = 0; i < 4; ++i) {
    host::ServerParams sp;
    sp.sid = ServerId{i};
    sp.workers = 8;
    auto& server = topo.add_node<host::Server>(sim, sp, service, Rng{i});
    const auto ports = topo.connect(server, tor);
    controller.add_server(ServerId{i}, host::server_ip(ServerId{i}),
                          ports.port_on_b);
    servers.push_back(&server);
  }

  host::ClientParams cp;
  cp.client_id = 0;
  cp.mode = host::SendMode::kViaSwitch;
  cp.target = host::service_vip();
  cp.rate_rps = 300000.0;  // ~23% of the 4-server rack
  cp.num_groups = controller.group_count();
  cp.stop_at = SimTime::milliseconds(30);
  auto& client = topo.add_node<host::Client>(
      sim, cp, std::make_shared<host::ExponentialWorkload>(25.0), Rng{42});
  const auto client_ports = topo.connect(client, tor);
  controller.add_route(host::client_ip(0), client_ports.port_on_b);

  std::printf("4 workers, %u candidate groups; draining server 2 at "
              "t=10ms\n",
              controller.group_count());

  sim.schedule_at(SimTime::milliseconds(10), [&] {
    controller.remove_server(ServerId{2});
    // The operator reduces the clients' group-id range (§3.6).
    client.set_num_groups(controller.group_count());
    std::printf("t=10ms: server 2 removed; %zu live servers, %u groups\n",
                controller.live_servers().size(),
                controller.group_count());
  });

  client.start();
  sim.run();

  std::printf("\nclient: sent %llu, completed %llu (in-flight losses at "
              "the removal instant are expected and bounded)\n",
              static_cast<unsigned long long>(client.stats().requests_sent),
              static_cast<unsigned long long>(client.stats().completed));
  for (const host::Server* server : servers) {
    std::printf("  server %u completed %8llu requests%s\n",
                value_of(server->sid()),
                static_cast<unsigned long long>(server->stats().completed),
                value_of(server->sid()) == 2 ? "  (drained at 10 ms)" : "");
  }
  std::printf("switch: cloned %llu requests, filtered %llu duplicates\n",
              static_cast<unsigned long long>(
                  program->stats().cloned_requests),
              static_cast<unsigned long long>(
                  program->stats().filtered_responses));
  return 0;
}
