// Command-line simulator front end.
//
//   ./build/examples/netclone_sim --template            # print a template
//   ./build/examples/netclone_sim scenario.cfg          # run a file
//   ./build/examples/netclone_sim scenario.cfg scheme=baseline loads=0.5
//
// Trailing key=value arguments override the file, so one scenario can be
// swept across schemes from a shell loop.
#include <cstdio>
#include <cstring>
#include <string>

#include "harness/scenario.hpp"

using namespace netclone;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --template | <scenario.cfg> [key=value ...]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    return usage(argv[0]);
  }
  if (std::strcmp(argv[1], "--template") == 0) {
    std::fputs(harness::default_scenario_text().c_str(), stdout);
    return 0;
  }
  try {
    // Load the file, then apply overrides by re-parsing "file + overrides"
    // as one concatenated scenario (later keys win by assignment order).
    std::string text;
    {
      // Reuse the library loader for the existence/IO error message.
      (void)harness::load_scenario_file(argv[1]);
      std::FILE* f = std::fopen(argv[1], "rb");
      char buf[4096];
      std::size_t n = 0;
      while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
        text.append(buf, n);
      }
      std::fclose(f);
    }
    for (int i = 2; i < argc; ++i) {
      text += "\n";
      text += argv[i];
    }
    const harness::Scenario scenario = harness::parse_scenario(text);
    std::printf("capacity estimate: %.0f KRPS\n",
                scenario.capacity_rps() / 1e3);
    (void)scenario.run();
    return 0;
  } catch (const harness::ScenarioError& e) {
    std::fprintf(stderr, "scenario error: %s\n", e.what());
    return 1;
  }
}
